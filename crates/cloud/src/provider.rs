//! VM lifecycle: launch delay, spot revocation warnings, termination,
//! continuous billing.
//!
//! The provider is a discrete-event model driven by [`CloudProvider::advance_to`].
//! Spot instances are revoked when their market's price exceeds their bid;
//! per EC2 semantics a [`ProviderEvent::RevocationWarning`] fires
//! [`crate::REVOCATION_WARNING`] seconds before the actual
//! [`ProviderEvent::Revoked`].

use std::collections::{BTreeMap, HashMap};

use crate::billing::{CostCategory, Ledger};
use crate::burstable::BurstableState;
use crate::catalog::InstanceType;
use crate::spot::{Bid, MarketId, SpotTrace};
use crate::{LAUNCH_DELAY, REVOCATION_WARNING};

/// Opaque instance identifier.
pub type InstanceId = u64;

/// How an instance is procured and billed.
#[derive(Debug, Clone, PartialEq)]
pub enum Lease {
    /// Regular on-demand: billed at the fixed hourly price, never revoked.
    OnDemand,
    /// Spot: billed at the market price, revoked when price exceeds bid.
    Spot {
        /// The spot market the instance runs in.
        market: MarketId,
        /// The bid placed for it.
        bid: Bid,
    },
}

/// Lifecycle state of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceState {
    /// Launch requested; becomes `Running` at the contained time.
    Pending {
        /// Time the instance becomes usable.
        ready_at: u64,
    },
    /// Serving (and being billed).
    Running,
    /// Revocation warning issued; will be revoked at the contained time.
    Warned {
        /// Time the instance disappears.
        revoke_at: u64,
    },
    /// Gone (terminated by the tenant or revoked by the provider).
    Terminated,
}

impl InstanceState {
    /// Whether the instance is usable for serving requests.
    pub fn is_usable(&self) -> bool {
        matches!(self, InstanceState::Running | InstanceState::Warned { .. })
    }
}

/// One provisioned instance.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Identifier.
    pub id: InstanceId,
    /// Catalog type.
    pub itype: InstanceType,
    /// Procurement lease.
    pub lease: Lease,
    /// Lifecycle state.
    pub state: InstanceState,
    /// Launch request time.
    pub launched_at: u64,
    /// Billing category.
    pub category: CostCategory,
    /// Token-bucket state for burstable types.
    pub burst: Option<BurstableState>,
}

/// Events surfaced by [`CloudProvider::advance_to`], in time order.
#[derive(Debug, Clone, PartialEq)]
pub enum ProviderEvent {
    /// The instance finished launching at the given time.
    Ready {
        /// Instance.
        id: InstanceId,
        /// Event time.
        at: u64,
    },
    /// The provider announced a forthcoming revocation.
    RevocationWarning {
        /// Instance.
        id: InstanceId,
        /// Warning time.
        at: u64,
        /// Time the instance will disappear.
        revoke_at: u64,
    },
    /// The instance was revoked (spot price exceeded the bid).
    Revoked {
        /// Instance.
        id: InstanceId,
        /// Event time.
        at: u64,
    },
}

impl ProviderEvent {
    /// The event's timestamp.
    pub fn at(&self) -> u64 {
        match self {
            ProviderEvent::Ready { at, .. }
            | ProviderEvent::RevocationWarning { at, .. }
            | ProviderEvent::Revoked { at, .. } => *at,
        }
    }
}

/// The simulated cloud: spot markets, instances, clock, ledger.
#[derive(Debug)]
pub struct CloudProvider {
    now: u64,
    traces: HashMap<MarketId, SpotTrace>,
    instances: BTreeMap<InstanceId, Instance>,
    next_id: InstanceId,
    ledger: Ledger,
    launch_delay: u64,
}

impl CloudProvider {
    /// Creates a provider over the given spot price traces, starting at t=0.
    pub fn new(traces: Vec<SpotTrace>) -> Self {
        Self {
            now: 0,
            traces: traces.into_iter().map(|t| (t.market.clone(), t)).collect(),
            instances: BTreeMap::new(),
            next_id: 1,
            ledger: Ledger::new(),
            launch_delay: LAUNCH_DELAY,
        }
    }

    /// Overrides the launch delay (e.g. 0 for instant-launch unit tests).
    pub fn with_launch_delay(mut self, delay: u64) -> Self {
        self.launch_delay = delay;
        self
    }

    /// Current simulated time, seconds.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The configured launch delay.
    pub fn launch_delay(&self) -> u64 {
        self.launch_delay
    }

    /// The cost ledger so far.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Spot price of `market` at time `t`, if the market is known.
    pub fn spot_price(&self, market: &MarketId, t: u64) -> Option<f64> {
        self.traces.get(market).and_then(|tr| tr.price_at(t))
    }

    /// The price trace of a market.
    pub fn trace(&self, market: &MarketId) -> Option<&SpotTrace> {
        self.traces.get(market)
    }

    /// All known markets.
    pub fn markets(&self) -> impl Iterator<Item = &MarketId> {
        self.traces.keys()
    }

    /// Requests an instance.
    ///
    /// For spot leases, returns `Err` if the market is unknown or the bid is
    /// currently below the market price (an immediate *bid failure*, exactly
    /// as EC2 rejects under-priced spot requests).
    pub fn launch(
        &mut self,
        itype: InstanceType,
        lease: Lease,
        category: CostCategory,
    ) -> Result<InstanceId, LaunchError> {
        if let Lease::Spot { market, bid } = &lease {
            let price = self
                .spot_price(market, self.now)
                .ok_or_else(|| LaunchError::UnknownMarket(market.clone()))?;
            if !bid.covers(price) {
                return Err(LaunchError::BidTooLow {
                    market: market.clone(),
                    price,
                });
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        let burst = BurstableState::for_type(&itype);
        let state = if self.launch_delay == 0 {
            InstanceState::Running
        } else {
            InstanceState::Pending {
                ready_at: self.now + self.launch_delay,
            }
        };
        self.instances.insert(
            id,
            Instance {
                id,
                itype,
                lease,
                state,
                launched_at: self.now,
                category,
                burst,
            },
        );
        Ok(id)
    }

    /// Terminates an instance (idempotent).
    pub fn terminate(&mut self, id: InstanceId) {
        if let Some(inst) = self.instances.get_mut(&id) {
            inst.state = InstanceState::Terminated;
        }
    }

    /// Looks up an instance.
    pub fn instance(&self, id: InstanceId) -> Option<&Instance> {
        self.instances.get(&id)
    }

    /// Mutable access to an instance (e.g. to drive its token buckets).
    pub fn instance_mut(&mut self, id: InstanceId) -> Option<&mut Instance> {
        self.instances.get_mut(&id)
    }

    /// All usable (running or warned) instances.
    pub fn usable_instances(&self) -> impl Iterator<Item = &Instance> {
        self.instances.values().filter(|i| i.state.is_usable())
    }

    /// All non-terminated instances (including pending).
    pub fn live_instances(&self) -> impl Iterator<Item = &Instance> {
        self.instances
            .values()
            .filter(|i| i.state != InstanceState::Terminated)
    }

    /// Advances simulated time to `t`, billing usage and emitting lifecycle
    /// events in time order.
    pub fn advance_to(&mut self, t: u64) -> Vec<ProviderEvent> {
        let mut events = Vec::new();
        while self.now < t {
            let bp = self.next_breakpoint(t);
            self.bill_interval(self.now, bp);
            self.now = bp;
            self.process_transitions(&mut events);
        }
        events
    }

    /// The earliest of: next trace-step boundary, any pending `ready_at`,
    /// any warned `revoke_at`, or `t`.
    fn next_breakpoint(&self, t: u64) -> u64 {
        let mut bp = t;
        // Trace boundaries (all traces share the standard step in practice,
        // but handle heterogeneous steps anyway).
        for tr in self.traces.values() {
            if let Some(steps) = self.now.checked_div(tr.step) {
                bp = bp.min((steps + 1) * tr.step);
            }
        }
        for inst in self.instances.values() {
            match inst.state {
                InstanceState::Pending { ready_at } if ready_at > self.now => {
                    bp = bp.min(ready_at);
                }
                InstanceState::Warned { revoke_at } if revoke_at > self.now => {
                    bp = bp.min(revoke_at);
                }
                _ => {}
            }
        }
        bp.max(self.now + 1).min(t)
    }

    /// Bills all usable instances for `[from, to)` at the price in effect at
    /// `from` (prices are constant between trace boundaries).
    fn bill_interval(&mut self, from: u64, to: u64) {
        if to <= from {
            return;
        }
        let hours = (to - from) as f64 / 3_600.0;
        let mut charges = Vec::new();
        for inst in self.instances.values() {
            if !inst.state.is_usable() {
                continue;
            }
            let rate = match &inst.lease {
                Lease::OnDemand => inst.itype.od_price,
                Lease::Spot { market, .. } => {
                    self.spot_price(market, from).unwrap_or(inst.itype.od_price)
                }
            };
            charges.push((inst.category, rate * hours));
        }
        for (cat, dollars) in charges {
            self.ledger.record(cat, from, dollars);
        }
    }

    /// Applies state transitions due at `self.now`.
    fn process_transitions(&mut self, events: &mut Vec<ProviderEvent>) {
        let now = self.now;
        let mut to_warn = Vec::new();
        for inst in self.instances.values_mut() {
            match inst.state {
                InstanceState::Pending { ready_at } if ready_at <= now => {
                    inst.state = InstanceState::Running;
                    events.push(ProviderEvent::Ready {
                        id: inst.id,
                        at: now,
                    });
                }
                InstanceState::Warned { revoke_at } if revoke_at <= now => {
                    inst.state = InstanceState::Terminated;
                    events.push(ProviderEvent::Revoked {
                        id: inst.id,
                        at: now,
                    });
                }
                _ => {}
            }
        }
        // Price check for running/pending spot instances.
        for inst in self.instances.values() {
            if matches!(
                inst.state,
                InstanceState::Running | InstanceState::Pending { .. }
            ) {
                if let Lease::Spot { market, bid } = &inst.lease {
                    if let Some(tr) = self.traces.get(market) {
                        if let Some(price) = tr.price_at(now) {
                            if !bid.covers(price) {
                                to_warn.push(inst.id);
                            }
                        }
                    }
                }
            }
        }
        for id in to_warn {
            let revoke_at = now + REVOCATION_WARNING;
            if let Some(inst) = self.instances.get_mut(&id) {
                inst.state = InstanceState::Warned { revoke_at };
            }
            events.push(ProviderEvent::RevocationWarning {
                id,
                at: now,
                revoke_at,
            });
        }
    }
}

/// Errors from [`CloudProvider::launch`].
#[derive(Debug, Clone, PartialEq)]
pub enum LaunchError {
    /// The requested spot market has no price trace.
    UnknownMarket(MarketId),
    /// The bid is below the current market price.
    BidTooLow {
        /// The market in question.
        market: MarketId,
        /// Its current price.
        price: f64,
    },
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::UnknownMarket(m) => write!(f, "unknown spot market: {m}"),
            LaunchError::BidTooLow { market, price } => {
                write!(f, "bid below current price {price} in {market}")
            }
        }
    }
}

impl std::error::Error for LaunchError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::find_type;
    use crate::spot::SpotTrace;
    use crate::TRACE_STEP;

    fn market() -> MarketId {
        MarketId::new("m4.large", "us-east-1d")
    }

    /// A trace that is cheap (0.03) for the first 10 steps, then spikes to
    /// 0.5 for 5 steps, then returns to cheap.
    fn spiky_provider() -> CloudProvider {
        let mut prices = vec![0.03; 10];
        prices.extend(vec![0.5; 5]);
        prices.extend(vec![0.03; 100]);
        CloudProvider::new(vec![SpotTrace::new(market(), 0.12, prices)])
    }

    #[test]
    fn od_instance_becomes_ready_after_launch_delay() {
        let mut p = spiky_provider();
        let id = p
            .launch(
                find_type("m4.large").unwrap(),
                Lease::OnDemand,
                CostCategory::OnDemand,
            )
            .unwrap();
        let events = p.advance_to(LAUNCH_DELAY + 1);
        assert!(events.iter().any(
            |e| matches!(e, ProviderEvent::Ready { id: i, at } if *i == id && *at == LAUNCH_DELAY)
        ));
        assert_eq!(p.instance(id).unwrap().state, InstanceState::Running);
    }

    #[test]
    fn spot_revocation_fires_warning_then_revoke() {
        let mut p = spiky_provider().with_launch_delay(0);
        let id = p
            .launch(
                find_type("m4.large").unwrap(),
                Lease::Spot {
                    market: market(),
                    bid: Bid(0.12),
                },
                CostCategory::Spot,
            )
            .unwrap();
        // Price exceeds the bid at step 10 (t = 3000 s).
        let events = p.advance_to(10 * TRACE_STEP + REVOCATION_WARNING + 1);
        let warn = events
            .iter()
            .find_map(|e| match e {
                ProviderEvent::RevocationWarning {
                    id: i,
                    at,
                    revoke_at,
                } if *i == id => Some((*at, *revoke_at)),
                _ => None,
            })
            .expect("warning");
        assert_eq!(warn.0, 10 * TRACE_STEP);
        assert_eq!(warn.1, 10 * TRACE_STEP + REVOCATION_WARNING);
        assert!(events.iter().any(
            |e| matches!(e, ProviderEvent::Revoked { id: i, at } if *i == id && *at == warn.1)
        ));
        assert_eq!(p.instance(id).unwrap().state, InstanceState::Terminated);
    }

    #[test]
    fn high_bid_survives_the_spike() {
        let mut p = spiky_provider().with_launch_delay(0);
        let id = p
            .launch(
                find_type("m4.large").unwrap(),
                Lease::Spot {
                    market: market(),
                    bid: Bid(0.6),
                },
                CostCategory::Spot,
            )
            .unwrap();
        let events = p.advance_to(30 * TRACE_STEP);
        assert!(events
            .iter()
            .all(|e| !matches!(e, ProviderEvent::Revoked { id: i, .. } if *i == id)));
        assert_eq!(p.instance(id).unwrap().state, InstanceState::Running);
    }

    #[test]
    fn launch_rejects_underpriced_bid() {
        let mut p = spiky_provider();
        p.advance_to(11 * TRACE_STEP); // inside the spike
        let err = p
            .launch(
                find_type("m4.large").unwrap(),
                Lease::Spot {
                    market: market(),
                    bid: Bid(0.12),
                },
                CostCategory::Spot,
            )
            .unwrap_err();
        assert!(matches!(err, LaunchError::BidTooLow { .. }));
    }

    #[test]
    fn launch_rejects_unknown_market() {
        let mut p = spiky_provider();
        let err = p
            .launch(
                find_type("m4.large").unwrap(),
                Lease::Spot {
                    market: MarketId::new("m4.large", "mars-1a"),
                    bid: Bid(1.0),
                },
                CostCategory::Spot,
            )
            .unwrap_err();
        assert!(matches!(err, LaunchError::UnknownMarket(_)));
    }

    #[test]
    fn billing_integrates_spot_price() {
        let mut p = spiky_provider().with_launch_delay(0);
        p.launch(
            find_type("m4.large").unwrap(),
            Lease::Spot {
                market: market(),
                bid: Bid(10.0),
            },
            CostCategory::Spot,
        )
        .unwrap();
        // 10 cheap steps (0.03) + 5 spike steps (0.5): each step is 1/12 h.
        p.advance_to(15 * TRACE_STEP);
        let expect = (10.0 * 0.03 + 5.0 * 0.5) / 12.0;
        let got = p.ledger().total(CostCategory::Spot);
        assert!((got - expect).abs() < 1e-9, "got {got}, want {expect}");
    }

    #[test]
    fn od_billing_is_linear_and_pending_is_free() {
        let mut p = spiky_provider(); // default 100 s launch delay
        p.launch(
            find_type("m4.large").unwrap(),
            Lease::OnDemand,
            CostCategory::OnDemand,
        )
        .unwrap();
        p.advance_to(LAUNCH_DELAY + 3_600);
        let got = p.ledger().total(CostCategory::OnDemand);
        assert!((got - 0.12).abs() < 1e-9, "got {got}"); // exactly 1 h billed
    }

    #[test]
    fn terminated_instances_stop_billing() {
        let mut p = spiky_provider().with_launch_delay(0);
        let id = p
            .launch(
                find_type("m4.large").unwrap(),
                Lease::OnDemand,
                CostCategory::OnDemand,
            )
            .unwrap();
        p.advance_to(3_600);
        p.terminate(id);
        let before = p.ledger().grand_total();
        p.advance_to(7_200);
        assert_eq!(p.ledger().grand_total(), before);
    }

    #[test]
    fn warned_instance_is_still_usable_until_revoked() {
        let mut p = spiky_provider().with_launch_delay(0);
        let id = p
            .launch(
                find_type("m4.large").unwrap(),
                Lease::Spot {
                    market: market(),
                    bid: Bid(0.12),
                },
                CostCategory::Spot,
            )
            .unwrap();
        p.advance_to(10 * TRACE_STEP + 1);
        assert!(p.instance(id).unwrap().state.is_usable());
        p.advance_to(10 * TRACE_STEP + REVOCATION_WARNING);
        assert!(!p.instance(id).unwrap().state.is_usable());
    }

    #[test]
    fn burstable_instances_carry_token_state() {
        let mut p = spiky_provider().with_launch_delay(0);
        let id = p
            .launch(
                find_type("t2.medium").unwrap(),
                Lease::OnDemand,
                CostCategory::Backup,
            )
            .unwrap();
        assert!(p.instance(id).unwrap().burst.is_some());
        let od = p
            .launch(
                find_type("m3.medium").unwrap(),
                Lease::OnDemand,
                CostCategory::Backup,
            )
            .unwrap();
        assert!(p.instance(od).unwrap().burst.is_none());
    }
}
