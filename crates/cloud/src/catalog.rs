//! The 2016-era EC2 instance catalog used throughout the reproduction.
//!
//! Prices are the October-2016 Linux on-demand prices the paper's Table 1
//! regression was fit over (US-West region). Burstable (t2) entries carry a
//! [`BurstSpec`] describing their token-bucket-governed CPU and network
//! capacities (paper Table 3 and Figure 5).

/// First-order instance classification used by the paper (Section 2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstanceClass {
    /// Conventional on-demand / reserved instances: high availability,
    /// near-fixed capacity. Also the class spot instances are drawn from.
    Regular,
    /// Credit-governed t2 instances: guaranteed base capacity plus burst
    /// capacity paid for with banked tokens.
    Burstable,
}

/// Burst capacity specification for a t2 instance.
///
/// EC2 documents CPU credits as deterministic token buckets: one credit is
/// one vCPU-minute of full utilization, credits accrue at a fixed rate and
/// cap at 24 hours' worth of accrual. Network bandwidth follows an analogous
/// (undocumented but measured — paper Figure 5) token bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstSpec {
    /// Sustainable baseline CPU, in fractional vCPUs (e.g. 0.1 for
    /// t2.micro's 10% of one core).
    pub base_vcpus: f64,
    /// CPU capacity while bursting, in vCPUs.
    pub peak_vcpus: f64,
    /// CPU credits earned per hour (credits are vCPU-minutes).
    pub credits_per_hour: f64,
    /// Maximum banked CPU credits (24 h of accrual on EC2).
    pub max_credits: f64,
    /// Credits granted at launch.
    pub initial_credits: f64,
    /// Sustainable baseline network bandwidth, Mbps.
    pub base_net_mbps: f64,
    /// Network bandwidth while bursting, Mbps.
    pub peak_net_mbps: f64,
    /// Network token bucket depth, in megabits.
    pub net_bucket_mbits: f64,
}

/// A single EC2 instance type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceType {
    /// EC2 API name, e.g. `"m4.large"`.
    pub name: &'static str,
    /// Instance class (regular vs burstable).
    pub class: InstanceClass,
    /// Advertised vCPU count. For burstables this is the *peak* count; the
    /// sustainable share lives in [`BurstSpec::base_vcpus`].
    pub vcpus: f64,
    /// RAM capacity in GiB.
    pub ram_gb: f64,
    /// Network bandwidth in Mbps (peak for burstables).
    pub net_mbps: f64,
    /// Hourly Linux on-demand price, US dollars.
    pub od_price: f64,
    /// Token-bucket specification; `Some` iff `class == Burstable`.
    pub burst: Option<BurstSpec>,
}

impl InstanceType {
    /// CPU capacity per GiB of RAM (`vCPU/GB` column of paper Table 1).
    ///
    /// For burstables, pass `peak = true` for the peak-capacity ratio.
    pub fn cpu_per_ram(&self, peak: bool) -> f64 {
        match (&self.burst, peak) {
            (Some(b), true) => b.peak_vcpus / self.ram_gb,
            (Some(b), false) => b.base_vcpus / self.ram_gb,
            (None, _) => self.vcpus / self.ram_gb,
        }
    }

    /// Network bandwidth per GiB of RAM (`Mbps/GB` column of paper Table 1).
    pub fn net_per_ram(&self, peak: bool) -> f64 {
        match (&self.burst, peak) {
            (Some(b), true) => b.peak_net_mbps / self.ram_gb,
            (Some(b), false) => b.base_net_mbps / self.ram_gb,
            (None, _) => self.net_mbps / self.ram_gb,
        }
    }

    /// Whether this is a burstable (t2) type.
    pub fn is_burstable(&self) -> bool {
        self.class == InstanceClass::Burstable
    }

    /// Hourly price of this type's capacity if bought as regular on-demand
    /// resources at the regressed unit prices (paper Table 3, "OD price").
    pub fn od_equivalent_price(&self, vcpu_unit: f64, ram_unit: f64) -> f64 {
        let cpus = self.burst.map_or(self.vcpus, |b| b.peak_vcpus);
        vcpu_unit * cpus + ram_unit * self.ram_gb
    }
}

#[allow(clippy::too_many_arguments)] // mirrors the catalog table columns
const fn t2(
    name: &'static str,
    peak_vcpus: f64,
    ram_gb: f64,
    base_vcpus: f64,
    credits_per_hour: f64,
    initial_credits: f64,
    peak_net_mbps: f64,
    od_price: f64,
) -> InstanceType {
    InstanceType {
        name,
        class: InstanceClass::Burstable,
        vcpus: peak_vcpus,
        ram_gb,
        net_mbps: peak_net_mbps,
        od_price,
        burst: Some(BurstSpec {
            base_vcpus,
            peak_vcpus,
            credits_per_hour,
            max_credits: credits_per_hour * 24.0,
            initial_credits,
            // Paper Table 1: burstable base network bandwidth is ~70 Mbps/GB.
            base_net_mbps: 70.0 * ram_gb,
            peak_net_mbps,
            // Measured bucket depth (Figure 5): roughly 6 minutes of peak
            // bandwidth can be sustained from a full bucket.
            net_bucket_mbits: peak_net_mbps * 360.0,
        }),
    }
}

const fn reg(
    name: &'static str,
    vcpus: f64,
    ram_gb: f64,
    net_mbps: f64,
    od_price: f64,
) -> InstanceType {
    InstanceType {
        name,
        class: InstanceClass::Regular,
        vcpus,
        ram_gb,
        net_mbps,
        od_price,
        burst: None,
    }
}

/// The 25 regular on-demand types the Table 1 regression is fit over.
///
/// Prices are October-2016 US-West Linux on-demand prices.
pub const REGULAR_TYPES: &[InstanceType] = &[
    // m3: general purpose (previous generation).
    reg("m3.medium", 1.0, 3.75, 300.0, 0.067),
    reg("m3.large", 2.0, 7.5, 550.0, 0.133),
    reg("m3.xlarge", 4.0, 15.0, 1000.0, 0.266),
    reg("m3.2xlarge", 8.0, 30.0, 1000.0, 0.532),
    // m4: general purpose.
    reg("m4.large", 2.0, 8.0, 450.0, 0.12),
    reg("m4.xlarge", 4.0, 16.0, 750.0, 0.239),
    reg("m4.2xlarge", 8.0, 32.0, 1000.0, 0.479),
    reg("m4.4xlarge", 16.0, 64.0, 2000.0, 0.958),
    reg("m4.10xlarge", 40.0, 160.0, 10000.0, 2.394),
    // c3: compute optimized (previous generation).
    reg("c3.large", 2.0, 3.75, 500.0, 0.105),
    reg("c3.xlarge", 4.0, 7.5, 700.0, 0.21),
    reg("c3.2xlarge", 8.0, 15.0, 1000.0, 0.42),
    reg("c3.4xlarge", 16.0, 30.0, 2000.0, 0.84),
    reg("c3.8xlarge", 32.0, 60.0, 10000.0, 1.68),
    // c4: compute optimized.
    reg("c4.large", 2.0, 3.75, 500.0, 0.105),
    reg("c4.xlarge", 4.0, 7.5, 750.0, 0.209),
    reg("c4.2xlarge", 8.0, 15.0, 1000.0, 0.419),
    reg("c4.4xlarge", 16.0, 30.0, 2000.0, 0.838),
    reg("c4.8xlarge", 36.0, 60.0, 10000.0, 1.675),
    // r3: memory optimized.
    reg("r3.large", 2.0, 15.25, 500.0, 0.166),
    reg("r3.xlarge", 4.0, 30.5, 700.0, 0.333),
    reg("r3.2xlarge", 8.0, 61.0, 1000.0, 0.665),
    reg("r3.4xlarge", 16.0, 122.0, 2000.0, 1.33),
    reg("r3.8xlarge", 32.0, 244.0, 10000.0, 2.66),
    // m1: legacy general purpose, rounds the set out to 25 types.
    reg("m1.small", 1.0, 1.7, 125.0, 0.044),
];

/// The t2 burstable family (paper Table 3).
///
/// Baseline CPU shares and credit accrual rates follow the EC2
/// documentation: nano 5%, micro 10%, small 20%, medium 2×20%, large 2×30%
/// of a core; one credit = one vCPU-minute; accrual caps at 24 h.
pub const BURSTABLE_TYPES: &[InstanceType] = &[
    t2("t2.nano", 1.0, 0.5, 0.05, 3.0, 30.0, 500.0, 0.0065),
    t2("t2.micro", 1.0, 1.0, 0.10, 6.0, 30.0, 1000.0, 0.013),
    t2("t2.small", 1.0, 2.0, 0.20, 12.0, 30.0, 1000.0, 0.026),
    t2("t2.medium", 2.0, 4.0, 0.40, 24.0, 60.0, 1000.0, 0.052),
    t2("t2.large", 2.0, 8.0, 0.60, 36.0, 60.0, 1000.0, 0.104),
];

/// The full catalog: regular types followed by burstable types.
pub fn catalog() -> Vec<InstanceType> {
    REGULAR_TYPES
        .iter()
        .chain(BURSTABLE_TYPES.iter())
        .copied()
        .collect()
}

/// Looks up an instance type by its EC2 API name.
pub fn find_type(name: &str) -> Option<InstanceType> {
    REGULAR_TYPES
        .iter()
        .chain(BURSTABLE_TYPES.iter())
        .find(|t| t.name == name)
        .copied()
}

/// The on-demand candidate set used in the paper's evaluation: m3/c3/r3
/// types with at most four vCPUs (memcached does not scale past four cores).
pub fn memcached_od_candidates() -> Vec<InstanceType> {
    REGULAR_TYPES
        .iter()
        .filter(|t| {
            t.vcpus <= 4.0
                && (t.name.starts_with("m3.")
                    || t.name.starts_with("c3.")
                    || t.name.starts_with("r3."))
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_type_hits_and_misses() {
        assert_eq!(find_type("m4.large").unwrap().ram_gb, 8.0);
        assert_eq!(find_type("t2.micro").unwrap().od_price, 0.013);
        assert!(find_type("z9.mega").is_none());
    }

    #[test]
    fn regression_set_has_25_regular_types() {
        assert_eq!(REGULAR_TYPES.len(), 25);
        assert!(REGULAR_TYPES.iter().all(|t| t.burst.is_none()));
    }

    #[test]
    fn memcached_candidates_match_paper_setup() {
        // The paper: m3.*, c3.*, r3.* with <= 4 vCPUs — "a total of 6
        // instance types".
        let c = memcached_od_candidates();
        assert_eq!(c.len(), 7); // m3.medium/large/xlarge, c3.large/xlarge, r3.large/xlarge
        assert!(c.iter().all(|t| t.vcpus <= 4.0));
    }

    #[test]
    fn burstable_prices_match_table3() {
        let expect = [
            ("t2.nano", 0.0065),
            ("t2.micro", 0.013),
            ("t2.small", 0.026),
            ("t2.medium", 0.052),
            ("t2.large", 0.104),
        ];
        for (name, price) in expect {
            assert_eq!(find_type(name).unwrap().od_price, price, "{name}");
        }
    }

    #[test]
    fn burstable_price_is_proportional_to_ram() {
        // Paper Table 1: burstable price is perfectly proportional to RAM
        // at $0.013/GB*hour.
        for t in BURSTABLE_TYPES {
            let per_gb = t.od_price / t.ram_gb;
            assert!((per_gb - 0.013).abs() < 1e-9, "{}: {per_gb}", t.name);
        }
    }

    #[test]
    fn peak_ratios_dominate_regular_ratios() {
        // Paper Section 2.2: at peak, burstables offer much higher CPU and
        // network per RAM-dollar than regular instances.
        let t2m = find_type("t2.medium").unwrap();
        let m3m = find_type("m3.medium").unwrap();
        let t2_cpu_per_dollar = t2m.cpu_per_ram(true) * t2m.ram_gb / t2m.od_price;
        let m3_cpu_per_dollar = m3m.cpu_per_ram(true) * m3m.ram_gb / m3m.od_price;
        assert!(t2_cpu_per_dollar > 2.0 * m3_cpu_per_dollar);
    }

    #[test]
    fn od_equivalent_prices_match_table3() {
        // Table 3's "OD price" column: peak capacity priced at the Table 1
        // unit prices 0.0397 $/vCPU·h and 0.0057 $/GB·h.
        let expect = [
            ("t2.nano", 0.0425),
            ("t2.micro", 0.0454),
            ("t2.small", 0.0511),
            ("t2.medium", 0.1022),
            ("t2.large", 0.125),
        ];
        for (name, price) in expect {
            let t = find_type(name).unwrap();
            let got = t.od_equivalent_price(0.0397, 0.0057);
            assert!(
                (got - price).abs() < 0.005,
                "{name}: got {got}, want {price}"
            );
        }
    }

    #[test]
    fn burst_specs_are_consistent() {
        for t in BURSTABLE_TYPES {
            let b = t.burst.unwrap();
            assert!(b.base_vcpus < b.peak_vcpus, "{}", t.name);
            assert!(b.base_net_mbps <= b.peak_net_mbps, "{}", t.name);
            assert!((b.max_credits - b.credits_per_hour * 24.0).abs() < 1e-9);
            // Credit accrual rate equals the baseline share: earning
            // credits_per_hour vCPU-minutes per hour sustains base_vcpus.
            assert!(
                (b.credits_per_hour / 60.0 - b.base_vcpus).abs() < 1e-9,
                "{}",
                t.name
            );
        }
    }
}
