//! CSV import/export for spot price traces.
//!
//! The synthetic generator stands in for the paper's 90-day EC2 history,
//! but nothing downstream cares where the samples came from: this module
//! lets real price history (e.g. from `aws ec2 describe-spot-price-history`)
//! be loaded as a [`SpotTrace`] and traces be exported for plotting.
//!
//! Format (header optional, recognized and skipped):
//!
//! ```csv
//! timestamp,price
//! 0,0.0321
//! 300,0.0334
//! ```
//!
//! Timestamps are seconds from an arbitrary epoch; irregularly-sampled
//! input is resampled to the requested step with zero-order hold, matching
//! how EC2 price changes take effect.

use crate::spot::{MarketId, SpotTrace};
use crate::TRACE_STEP;

/// Errors from [`parse_csv`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceFileError {
    /// A data line did not have two comma-separated fields.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// A field failed to parse as a number, or a price was negative.
    BadValue {
        /// 1-based line number.
        line: usize,
    },
    /// Timestamps must be non-decreasing.
    OutOfOrder {
        /// 1-based line number.
        line: usize,
    },
    /// No data rows were found.
    Empty,
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::BadLine { line } => write!(f, "line {line}: expected 2 fields"),
            TraceFileError::BadValue { line } => write!(f, "line {line}: bad number"),
            TraceFileError::OutOfOrder { line } => {
                write!(f, "line {line}: timestamps must be non-decreasing")
            }
            TraceFileError::Empty => write!(f, "no data rows"),
        }
    }
}

impl std::error::Error for TraceFileError {}

/// Parses CSV content into a trace for `market`, resampled to the standard
/// 5-minute step.
pub fn parse_csv(
    market: MarketId,
    od_price: f64,
    content: &str,
) -> Result<SpotTrace, TraceFileError> {
    parse_csv_with_step(market, od_price, content, TRACE_STEP)
}

/// Parses CSV content, resampling to `step` seconds.
pub fn parse_csv_with_step(
    market: MarketId,
    od_price: f64,
    content: &str,
    step: u64,
) -> Result<SpotTrace, TraceFileError> {
    let mut points: Vec<(u64, f64)> = Vec::new();
    for (idx, raw) in content.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split(',');
        let a = fields.next().map(str::trim).unwrap_or("");
        let b = fields.next().map(str::trim);
        let Some(b) = b else {
            return Err(TraceFileError::BadLine { line: line_no });
        };
        if fields.next().is_some() {
            return Err(TraceFileError::BadLine { line: line_no });
        }
        // Header row: skip if the first field is not numeric and this is
        // the first content line.
        if points.is_empty()
            && a.parse::<u64>().is_err()
            && !a.chars().next().is_some_and(|c| c.is_ascii_digit())
        {
            continue;
        }
        let t: u64 = a
            .parse()
            .map_err(|_| TraceFileError::BadValue { line: line_no })?;
        let p: f64 = b
            .parse()
            .map_err(|_| TraceFileError::BadValue { line: line_no })?;
        if !p.is_finite() || p < 0.0 {
            return Err(TraceFileError::BadValue { line: line_no });
        }
        if let Some(&(prev, _)) = points.last() {
            if t < prev {
                return Err(TraceFileError::OutOfOrder { line: line_no });
            }
        }
        points.push((t, p));
    }
    if points.is_empty() {
        return Err(TraceFileError::Empty);
    }

    // Resample with zero-order hold onto [t0, t_last] at `step`.
    let t0 = points[0].0;
    let t_end = points.last().unwrap().0;
    let n = ((t_end - t0) / step + 1) as usize;
    let mut prices = Vec::with_capacity(n);
    let mut cursor = 0usize;
    for i in 0..n {
        let t = t0 + i as u64 * step;
        while cursor + 1 < points.len() && points[cursor + 1].0 <= t {
            cursor += 1;
        }
        prices.push(points[cursor].1);
    }
    let mut trace = SpotTrace::new(market, od_price, prices);
    trace.start = t0;
    trace.step = step;
    Ok(trace)
}

/// Serializes a trace as CSV (with header), inverse of [`parse_csv`].
pub fn to_csv(trace: &SpotTrace) -> String {
    let mut out = String::with_capacity(trace.prices.len() * 16 + 16);
    out.push_str("timestamp,price\n");
    for (i, p) in trace.prices.iter().enumerate() {
        out.push_str(&format!("{},{p}\n", trace.start + i as u64 * trace.step));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn market() -> MarketId {
        MarketId::new("m4.large", "us-east-1d")
    }

    #[test]
    fn parses_regular_csv_with_header() {
        let csv = "timestamp,price\n0,0.03\n300,0.04\n600,0.05\n";
        let t = parse_csv(market(), 0.12, csv).unwrap();
        assert_eq!(t.prices, vec![0.03, 0.04, 0.05]);
        assert_eq!(t.price_at(300), Some(0.04));
    }

    #[test]
    fn header_is_optional_and_comments_skip() {
        let csv = "# comment\n0,0.03\n300,0.04\n";
        let t = parse_csv(market(), 0.12, csv).unwrap();
        assert_eq!(t.prices.len(), 2);
    }

    #[test]
    fn irregular_samples_are_zero_order_held() {
        // Price changes at t=0 and t=700; resampled at 300 s: samples at
        // 0, 300, 600 hold 0.03; 900 holds 0.07.
        let csv = "0,0.03\n700,0.07\n900,0.07\n";
        let t = parse_csv(market(), 0.12, csv).unwrap();
        assert_eq!(t.prices, vec![0.03, 0.03, 0.03, 0.07]);
    }

    #[test]
    fn nonzero_epoch_is_preserved() {
        let csv = "6000,0.03\n6300,0.05\n";
        let t = parse_csv(market(), 0.12, csv).unwrap();
        assert_eq!(t.start, 6000);
        assert_eq!(t.price_at(6300), Some(0.05));
    }

    #[test]
    fn roundtrip_through_csv() {
        let orig = SpotTrace::new(market(), 0.12, vec![0.03, 0.04, 0.05, 0.5]);
        let csv = to_csv(&orig);
        let back = parse_csv(market(), 0.12, &csv).unwrap();
        assert_eq!(orig.prices, back.prices);
        assert_eq!(orig.start, back.start);
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            parse_csv(market(), 0.12, "").unwrap_err(),
            TraceFileError::Empty
        );
        assert_eq!(
            parse_csv(market(), 0.12, "0\n").unwrap_err(),
            TraceFileError::BadLine { line: 1 }
        );
        assert_eq!(
            parse_csv(market(), 0.12, "0,abc\n").unwrap_err(),
            TraceFileError::BadValue { line: 1 }
        );
        assert_eq!(
            parse_csv(market(), 0.12, "0,0.03\n1,2,3\n").unwrap_err(),
            TraceFileError::BadLine { line: 2 }
        );
        assert_eq!(
            parse_csv(market(), 0.12, "300,0.03\n0,0.04\n").unwrap_err(),
            TraceFileError::OutOfOrder { line: 2 }
        );
        assert_eq!(
            parse_csv(market(), 0.12, "0,-1.0\n").unwrap_err(),
            TraceFileError::BadValue { line: 1 }
        );
    }

    #[test]
    fn custom_step_resampling() {
        let csv = "0,0.01\n60,0.02\n120,0.03\n";
        let t = parse_csv_with_step(market(), 0.12, csv, 60).unwrap();
        assert_eq!(t.prices, vec![0.01, 0.02, 0.03]);
        assert_eq!(t.step, 60);
    }

    #[test]
    fn parsed_trace_feeds_the_predictors() {
        // End-to-end: a CSV trace works with the run-extraction machinery.
        let csv = "0,0.03\n300,0.03\n600,0.50\n900,0.03\n";
        let t = parse_csv(market(), 0.12, csv).unwrap();
        assert_eq!(t.next_failure(0, crate::spot::Bid(0.1)), Some(600));
    }
}
