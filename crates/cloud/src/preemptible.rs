//! GCE-style preemptible instances (paper Section 1).
//!
//! The paper notes that Google Compute Engine's preemptible VMs, "despite
//! operational differences from EC2 spot instances, similarly offer lower
//! prices for poorer availability". The operational differences matter for
//! procurement:
//!
//! * **fixed price** — a flat ~70–80% discount off on-demand; no bidding,
//!   no price-driven revocation,
//! * **random preemption** — the provider reclaims capacity at its own
//!   discretion (empirically a roughly constant hazard, higher in busy
//!   zones), with a 30-second warning, and
//! * **24-hour cap** — a preemptible VM is always terminated within 24 h.
//!
//! This module models those semantics and adapts them to the optimizer's
//! offer interface, so the same controller can procure from either kind of
//! market — the "other cloud providers are likely to offer similar cheap
//! instances" generality the paper's conclusion claims.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
/// Warning GCE gives before preempting (30 seconds).
pub const PREEMPTION_WARNING: u64 = 30;

/// Hard lifetime cap of a preemptible VM (24 hours).
pub const MAX_LIFETIME: u64 = 24 * crate::HOUR;

/// A preemptible market: fixed discount, random reclamation.
#[derive(Debug, Clone)]
pub struct PreemptibleMarket {
    /// Market label (e.g. `"us-central1-a/n1-standard-2"`).
    pub name: String,
    /// On-demand price of the equivalent machine type, $/h.
    pub od_price: f64,
    /// Fixed preemptible price, $/h (GCE: ~20–30% of on-demand).
    pub price: f64,
    /// Mean preemptions per instance-hour (empirical hazard).
    pub preemption_hazard_per_hour: f64,
    /// Seed for preemption sampling.
    pub seed: u64,
}

impl PreemptibleMarket {
    /// A typical GCE-like market: 80% discount, ~5%/hour hazard.
    pub fn typical(name: impl Into<String>, od_price: f64, seed: u64) -> Self {
        Self {
            name: name.into(),
            od_price,
            price: 0.2 * od_price,
            preemption_hazard_per_hour: 0.05,
            seed,
        }
    }

    /// Expected lifetime of an instance, hours — `min(1/hazard, 24)`
    /// because of the hard cap.
    pub fn expected_lifetime_hours(&self) -> f64 {
        if self.preemption_hazard_per_hour <= 0.0 {
            return 24.0;
        }
        // E[min(Exp(h), 24)] = (1 - e^{-24 h}) / h.
        (1.0 - (-24.0 * self.preemption_hazard_per_hour).exp()) / self.preemption_hazard_per_hour
    }

    /// A *conservative* lifetime estimate analogous to the spot model's
    /// low percentile: the `q`-quantile of the capped exponential.
    pub fn lifetime_quantile_hours(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        if self.preemption_hazard_per_hour <= 0.0 {
            return 24.0;
        }
        let t = -(1.0 - q).ln() / self.preemption_hazard_per_hour;
        t.min(24.0)
    }

    /// Samples the lifetime (seconds) of an instance launched at `launch`
    /// (deterministic per (market seed, launch time)).
    pub fn sample_lifetime(&self, launch: u64) -> u64 {
        let mut rng = StdRng::seed_from_u64(self.seed ^ launch.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if self.preemption_hazard_per_hour <= 0.0 {
            return MAX_LIFETIME;
        }
        let u: f64 = rng.gen::<f64>().max(1e-12);
        let hours = -u.ln() / self.preemption_hazard_per_hour;
        ((hours * 3_600.0) as u64).min(MAX_LIFETIME)
    }

    /// Fraction of the on-demand price paid.
    pub fn discount(&self) -> f64 {
        1.0 - self.price / self.od_price
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn market() -> PreemptibleMarket {
        PreemptibleMarket::typical("us-central1-a/n1-standard-2", 0.095, 42)
    }

    #[test]
    fn typical_pricing() {
        let m = market();
        assert!((m.price - 0.019).abs() < 1e-12);
        assert!((m.discount() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn expected_lifetime_respects_the_cap() {
        let m = market();
        // 5%/h hazard → mean ~14 h after capping at 24 h.
        let e = m.expected_lifetime_hours();
        assert!((13.0..15.0).contains(&e), "{e}");
        let mut hazardless = market();
        hazardless.preemption_hazard_per_hour = 0.0;
        assert_eq!(hazardless.expected_lifetime_hours(), 24.0);
        let mut hot = market();
        hot.preemption_hazard_per_hour = 2.0;
        assert!(hot.expected_lifetime_hours() < 1.0);
    }

    #[test]
    fn quantile_is_conservative() {
        let m = market();
        let q05 = m.lifetime_quantile_hours(0.05);
        // 5th percentile of Exp(0.05/h) ≈ 1.03 h.
        assert!((0.9..1.2).contains(&q05), "{q05}");
        assert!(q05 < m.expected_lifetime_hours());
        assert_eq!(m.lifetime_quantile_hours(1.0), 24.0);
    }

    #[test]
    fn sampled_lifetimes_are_deterministic_and_capped() {
        let m = market();
        let a = m.sample_lifetime(1000);
        let b = m.sample_lifetime(1000);
        assert_eq!(a, b);
        for launch in 0..200 {
            assert!(m.sample_lifetime(launch * 3_600) <= MAX_LIFETIME);
        }
    }

    #[test]
    fn sampled_lifetimes_match_the_hazard() {
        let m = market();
        let mean: f64 = (0..2_000)
            .map(|i| m.sample_lifetime(i * 7_919) as f64 / 3_600.0)
            .sum::<f64>()
            / 2_000.0;
        let expect = m.expected_lifetime_hours();
        assert!(
            (mean - expect).abs() / expect < 0.1,
            "mean {mean} vs {expect}"
        );
    }
}
