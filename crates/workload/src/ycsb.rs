//! YCSB-style request stream generation.
//!
//! Binds a key-popularity generator to a read/write mix and an item size,
//! producing the read-heavy streams the paper evaluates with (its reference
//! workload, Facebook USR, is 99.8% reads; the prototype experiments use
//! 100% reads with 4 KB items).

use rand::Rng;

use crate::zipf::ScrambledZipfian;

/// One cache request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Key, as a stable 64-bit identifier.
    pub key: u64,
    /// Whether this is a read (`get`) as opposed to a write (`set`).
    pub is_read: bool,
    /// Value size in bytes (relevant for writes and for warm-up volume).
    pub value_size: usize,
}

impl Request {
    /// The key in its canonical byte representation (for stores/routers).
    pub fn key_bytes(&self) -> [u8; 8] {
        self.key.to_be_bytes()
    }
}

/// A request stream generator.
#[derive(Debug, Clone)]
pub struct RequestGenerator {
    keys: ScrambledZipfian,
    read_fraction: f64,
    value_size: usize,
}

impl RequestGenerator {
    /// The paper's item size: 4 KB.
    pub const DEFAULT_VALUE_SIZE: usize = 4 * 1024;

    /// Creates a generator over `n` keys with Zipf skew `theta` and the
    /// given read fraction (clamped to `[0, 1]`).
    pub fn new(n: u64, theta: f64, read_fraction: f64) -> Self {
        Self {
            keys: ScrambledZipfian::new(n, theta),
            read_fraction: read_fraction.clamp(0.0, 1.0),
            value_size: Self::DEFAULT_VALUE_SIZE,
        }
    }

    /// The paper's prototype stream: 100% reads, 4 KB items.
    pub fn read_only(n: u64, theta: f64) -> Self {
        Self::new(n, theta, 1.0)
    }

    /// Overrides the value size.
    pub fn with_value_size(mut self, bytes: usize) -> Self {
        self.value_size = bytes;
        self
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> u64 {
        self.keys.inner().n()
    }

    /// Draws the next request.
    pub fn next_request<R: Rng + ?Sized>(&self, rng: &mut R) -> Request {
        Request {
            key: self.keys.sample(rng),
            is_read: rng.gen::<f64>() < self.read_fraction,
            value_size: self.value_size,
        }
    }

    /// The key generator (for warm-up and placement logic).
    pub fn keys(&self) -> &ScrambledZipfian {
        &self.keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn read_only_stream_is_all_reads() {
        let g = RequestGenerator::read_only(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let r = g.next_request(&mut rng);
            assert!(r.is_read);
            assert_eq!(r.value_size, 4096);
            assert!(r.key < 1000);
        }
    }

    #[test]
    fn mixed_stream_respects_read_fraction() {
        let g = RequestGenerator::new(1000, 0.99, 0.8);
        let mut rng = StdRng::seed_from_u64(2);
        let reads = (0..10_000)
            .filter(|_| g.next_request(&mut rng).is_read)
            .count();
        let frac = reads as f64 / 10_000.0;
        assert!((frac - 0.8).abs() < 0.02, "{frac}");
    }

    #[test]
    fn value_size_override() {
        let g = RequestGenerator::read_only(10, 0.5).with_value_size(100);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(g.next_request(&mut rng).value_size, 100);
    }

    #[test]
    fn key_bytes_roundtrip() {
        let r = Request {
            key: 0xDEAD_BEEF,
            is_read: true,
            value_size: 1,
        };
        assert_eq!(u64::from_be_bytes(r.key_bytes()), 0xDEAD_BEEF);
    }

    #[test]
    fn skew_shows_up_in_the_stream() {
        let g = RequestGenerator::read_only(10_000, 2.0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(g.next_request(&mut rng).key).or_insert(0u64) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        assert!(
            max > 25_000,
            "most popular key should dominate at Zipf 2.0, got {max}"
        );
    }
}
