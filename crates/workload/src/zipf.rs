//! Zipfian key generation and the analytic popularity model.
//!
//! [`Zipfian`] is the YCSB generator (Gray et al.'s "Quickly generating
//! billion-record synthetic databases" algorithm): rank `k` is drawn with
//! probability proportional to `1/k^θ` in O(1) time per sample.
//! [`ScrambledZipfian`] hashes the rank so popular keys are spread over the
//! key space (YCSB's `scrambled_zipfian`), which is what keeps a consistent
//! hash ring load-balanced under skew.
//!
//! [`PopularityModel`] is the closed-form counterpart the optimizer needs:
//! `F(x)` = fraction of accesses hitting the most popular `x` fraction of
//! items (the paper's popularity CDF), and its inverse for "which fraction
//! of the working set receives 90% of accesses" (the paper's hot-data
//! definition).

use rand::Rng;

/// YCSB Zipfian rank generator over `{0, .., n-1}` (0 = most popular).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use spotcache_workload::zipf::Zipfian;
///
/// let z = Zipfian::new(1_000, 0.99);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let rank = z.sample(&mut rng);
/// assert!(rank < 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// Creates a generator over `n` items with skew `theta` in `(0, 1) ∪ (1, ∞)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta <= 0` or `theta == 1` (use 0.99 or 1.01;
    /// the YCSB formulation is singular exactly at 1, and the paper's
    /// "Zipf = 1.0" is conventionally run as 0.99).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian over zero items");
        assert!(
            theta > 0.0 && (theta - 1.0).abs() > 1e-9,
            "theta must be > 0 and != 1"
        );
        let zetan = generalized_harmonic(n, theta);
        let zeta2 = generalized_harmonic(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws a rank (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) && self.n >= 2 {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Probability of drawing rank `k` (0-based).
    pub fn pmf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 0.0;
        }
        1.0 / ((k + 1) as f64).powf(self.theta) / self.zetan
    }

    /// Access to `zeta(2, θ)` (for tests).
    #[doc(hidden)]
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// A Zipfian generator whose ranks are scrambled over the key space.
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    inner: Zipfian,
}

impl ScrambledZipfian {
    /// Creates a scrambled generator (see [`Zipfian::new`] for panics).
    pub fn new(n: u64, theta: f64) -> Self {
        Self {
            inner: Zipfian::new(n, theta),
        }
    }

    /// Draws a key in `{0, .., n-1}`; popular keys are spread uniformly
    /// over the range rather than clustered at 0.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let rank = self.inner.sample(rng);
        fnv_mix(rank) % self.inner.n
    }

    /// The key a given popularity rank maps to.
    pub fn key_for_rank(&self, rank: u64) -> u64 {
        fnv_mix(rank) % self.inner.n
    }

    /// The underlying rank generator.
    pub fn inner(&self) -> &Zipfian {
        &self.inner
    }
}

/// FNV-style 64-bit mix used by YCSB's scrambled generator.
fn fnv_mix(x: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in x.to_be_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Generalized harmonic number `H_{n,θ} = Σ_{k=1..n} k^{-θ}`.
///
/// Exact summation up to a cutoff, then an Euler–Maclaurin integral tail —
/// accurate to ~1e-9 relative error, fast for `n` in the billions.
pub fn generalized_harmonic(n: u64, theta: f64) -> f64 {
    const CUTOFF: u64 = 100_000;
    let m = n.min(CUTOFF);
    let mut sum = 0.0;
    for k in 1..=m {
        sum += 1.0 / (k as f64).powf(theta);
    }
    if n > m {
        // ∫ x^{-θ} dx from m+1/2 to n+1/2 (midpoint-corrected tail).
        let (a, b) = (m as f64 + 0.5, n as f64 + 0.5);
        sum += if (theta - 1.0).abs() < 1e-12 {
            (b / a).ln()
        } else {
            (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta)
        };
    }
    sum
}

/// Closed-form popularity CDF over a Zipfian working set — the paper's
/// `F(·)` and the source of its hot-data definition.
#[derive(Debug, Clone, Copy)]
pub struct PopularityModel {
    /// Number of distinct items in the working set.
    pub n: u64,
    /// Zipf skew.
    pub theta: f64,
    h_n: f64,
}

impl PopularityModel {
    /// Creates a model over `n` items with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta < 0`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "empty working set");
        assert!(theta >= 0.0, "negative skew");
        Self {
            n,
            theta,
            h_n: generalized_harmonic(n, theta),
        }
    }

    /// `F(x)`: fraction of accesses hitting the most popular `x ∈ [0, 1]`
    /// fraction of items.
    pub fn access_mass(&self, top_frac: f64) -> f64 {
        let x = top_frac.clamp(0.0, 1.0);
        // The epsilon absorbs the float round-trip through
        // `hot_fraction` (which returns `k / n`): `(k / n) * n` can land
        // just below `k`.
        let k = (x * self.n as f64 + 1e-9).floor() as u64;
        if k == 0 {
            return 0.0;
        }
        (generalized_harmonic(k, self.theta) / self.h_n).min(1.0)
    }

    /// Inverse of [`Self::access_mass`]: the smallest item fraction whose
    /// accesses account for at least `mass` of all accesses (the paper's
    /// hot set is `hot_fraction(0.9)`).
    pub fn hot_fraction(&self, mass: f64) -> f64 {
        let target = mass.clamp(0.0, 1.0);
        let (mut lo, mut hi) = (0u64, self.n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let m = if mid == 0 {
                0.0
            } else {
                generalized_harmonic(mid, self.theta) / self.h_n
            };
            if m >= target {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo as f64 / self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn harmonic_matches_brute_force() {
        for theta in [0.5, 0.99, 1.0, 1.5, 2.0] {
            let exact: f64 = (1..=1000u64).map(|k| 1.0 / (k as f64).powf(theta)).sum();
            let got = generalized_harmonic(1000, theta);
            assert!(
                (got - exact).abs() < 1e-9,
                "theta {theta}: {got} vs {exact}"
            );
        }
    }

    #[test]
    fn harmonic_tail_approximation_is_tight() {
        // Compare hybrid vs brute force past the cutoff.
        let theta = 1.2;
        let n = 300_000u64;
        let exact: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(theta)).sum();
        let got = generalized_harmonic(n, theta);
        assert!((got - exact).abs() / exact < 1e-6, "{got} vs {exact}");
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipfian::new(1000, 0.99);
        let total: f64 = (0..1000).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
        assert_eq!(z.pmf(1000), 0.0);
    }

    #[test]
    fn zipf_sampling_matches_pmf() {
        let z = Zipfian::new(100, 0.99);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0u64; 100];
        let samples = 200_000;
        for _ in 0..samples {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // The Gray et al. algorithm is exact for ranks 0-1 and approximate
        // beyond; check the head accordingly and the tail in aggregate.
        for k in 0..5 {
            let want = z.pmf(k) * samples as f64;
            let got = counts[k as usize] as f64;
            let tol = if k < 2 { 0.1 } else { 0.25 };
            assert!(
                (got - want).abs() / want < tol,
                "rank {k}: got {got}, want {want}"
            );
        }
        // Counts must be (noisily) non-increasing in rank overall.
        let head: u64 = counts[..10].iter().sum();
        let tail: u64 = counts[90..].iter().sum();
        assert!(head > 5 * tail, "head {head} vs tail {tail}");
    }

    #[test]
    fn higher_theta_is_more_skewed() {
        let mild = PopularityModel::new(1_000_000, 0.99);
        let heavy = PopularityModel::new(1_000_000, 2.0);
        assert!(heavy.access_mass(0.01) > mild.access_mass(0.01));
        assert!(heavy.hot_fraction(0.9) < mild.hot_fraction(0.9));
    }

    #[test]
    fn access_mass_is_monotone_and_bounded() {
        let m = PopularityModel::new(100_000, 1.2);
        let mut prev = 0.0;
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            let f = m.access_mass(x);
            assert!(f >= prev - 1e-12);
            assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
        assert_eq!(m.access_mass(0.0), 0.0);
        assert!((m.access_mass(1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hot_fraction_inverts_access_mass() {
        let m = PopularityModel::new(1_000_000, 1.5);
        let h = m.hot_fraction(0.9);
        let mass = m.access_mass(h);
        assert!(mass >= 0.9 - 1e-6, "mass at hot fraction: {mass}");
        // One item fewer must be below the target.
        let h_minus = (h * m.n as f64 - 1.0).max(0.0) / m.n as f64;
        assert!(m.access_mass(h_minus) < 0.9 + 1e-9);
    }

    #[test]
    fn zipf2_hot_set_is_tiny() {
        // The paper's Zipf=2.0 workloads: a very small subset is "very hot"
        // (Section 5.5's explanation of why OD+Spot_Sep wastes resources).
        let m = PopularityModel::new(15_000_000, 2.0); // ~60GB / 4KB items
        assert!(m.hot_fraction(0.9) < 0.001);
    }

    #[test]
    fn scrambled_spreads_popular_keys() {
        let z = ScrambledZipfian::new(10_000, 0.99);
        let k0 = z.key_for_rank(0);
        let k1 = z.key_for_rank(1);
        assert_ne!(k0, k1);
        assert!(k0 > 100 || k1 > 100, "hot keys should not cluster at 0");
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert!(z.sample(&mut rng) < 10_000);
        }
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn theta_one_panics() {
        Zipfian::new(10, 1.0);
    }

    #[test]
    #[should_panic(expected = "zero items")]
    fn zero_items_panics() {
        Zipfian::new(0, 0.5);
    }
}
