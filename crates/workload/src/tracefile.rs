//! CSV import for hourly workload traces.
//!
//! The synthetic [`crate::wikipedia::WikipediaTrace`] stands in for the
//! real Wikipedia access trace the paper scales; this module lets the real
//! thing (or any hourly rate log) be loaded and rescaled with the same
//! peak-rate / max-working-set methodology.
//!
//! Format (header optional):
//!
//! ```csv
//! hour,rate_ops,wss_gb
//! 0,183000,41.5
//! 1,176500,40.9
//! ```
//!
//! The `wss_gb` column may be omitted; the working set is then derived
//! from the rate shape the same way the synthetic trace derives it
//! (compressed dynamic range, trough = 0.4 × peak).

use crate::wikipedia::WikipediaTrace;

/// Errors from [`parse_hourly_csv`].
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadFileError {
    /// A data line had the wrong number of fields.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// A field failed to parse or was negative.
    BadValue {
        /// 1-based line number.
        line: usize,
    },
    /// Hours must be contiguous from zero.
    BadHour {
        /// 1-based line number.
        line: usize,
    },
    /// No data rows.
    Empty,
}

impl std::fmt::Display for WorkloadFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadFileError::BadLine { line } => write!(f, "line {line}: wrong field count"),
            WorkloadFileError::BadValue { line } => write!(f, "line {line}: bad number"),
            WorkloadFileError::BadHour { line } => {
                write!(f, "line {line}: hours must run 0, 1, 2, ...")
            }
            WorkloadFileError::Empty => write!(f, "no data rows"),
        }
    }
}

impl std::error::Error for WorkloadFileError {}

/// Parses an hourly CSV and rescales it to `peak_ops` / `max_wss_gb`,
/// exactly as the paper scales the Wikipedia trace.
pub fn parse_hourly_csv(
    content: &str,
    peak_ops: f64,
    max_wss_gb: f64,
) -> Result<WikipediaTrace, WorkloadFileError> {
    let mut rates: Vec<f64> = Vec::new();
    let mut wss: Vec<Option<f64>> = Vec::new();
    for (idx, raw) in content.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if !(2..=3).contains(&fields.len()) {
            return Err(WorkloadFileError::BadLine { line: line_no });
        }
        // Header: first content line with a non-numeric hour field.
        if rates.is_empty() && fields[0].parse::<u64>().is_err() {
            continue;
        }
        let hour: u64 = fields[0]
            .parse()
            .map_err(|_| WorkloadFileError::BadValue { line: line_no })?;
        if hour != rates.len() as u64 {
            return Err(WorkloadFileError::BadHour { line: line_no });
        }
        let rate: f64 = fields[1]
            .parse()
            .map_err(|_| WorkloadFileError::BadValue { line: line_no })?;
        if !rate.is_finite() || rate < 0.0 {
            return Err(WorkloadFileError::BadValue { line: line_no });
        }
        let w = match fields.get(2) {
            Some(v) => {
                let w: f64 = v
                    .parse()
                    .map_err(|_| WorkloadFileError::BadValue { line: line_no })?;
                if !w.is_finite() || w < 0.0 {
                    return Err(WorkloadFileError::BadValue { line: line_no });
                }
                Some(w)
            }
            None => None,
        };
        rates.push(rate);
        wss.push(w);
    }
    if rates.is_empty() {
        return Err(WorkloadFileError::Empty);
    }

    let peak = rates.iter().copied().fold(f64::MIN, f64::max).max(1e-12);
    let hourly_rates: Vec<f64> = rates.iter().map(|r| r / peak * peak_ops).collect();
    let hourly_wss_gb: Vec<f64> = if wss.iter().all(|w| w.is_some()) {
        let wpeak = wss
            .iter()
            .map(|w| w.unwrap())
            .fold(f64::MIN, f64::max)
            .max(1e-12);
        wss.iter()
            .map(|w| w.unwrap() / wpeak * max_wss_gb)
            .collect()
    } else {
        // Derive from the rate shape, as the synthetic trace does.
        rates
            .iter()
            .map(|r| (0.4 + 0.6 * r / peak) * max_wss_gb)
            .collect()
    };
    Ok(WikipediaTrace {
        hourly_rates,
        hourly_wss_gb,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_with_header_and_wss() {
        let csv = "hour,rate_ops,wss_gb\n0,1000,10\n1,2000,20\n2,500,5\n";
        let t = parse_hourly_csv(csv, 320_000.0, 60.0).unwrap();
        assert_eq!(t.hours(), 3);
        assert!((t.peak_rate() - 320_000.0).abs() < 1e-6);
        assert!((t.max_wss() - 60.0).abs() < 1e-6);
        assert!((t.hourly_rates[0] - 160_000.0).abs() < 1e-6);
        assert!((t.hourly_wss_gb[2] - 15.0).abs() < 1e-6);
    }

    #[test]
    fn derives_wss_when_column_missing() {
        let csv = "0,1000\n1,2000\n";
        let t = parse_hourly_csv(csv, 100_000.0, 50.0).unwrap();
        assert!((t.hourly_wss_gb[1] - 50.0).abs() < 1e-6); // peak hour
        assert!((t.hourly_wss_gb[0] - 35.0).abs() < 1e-6); // 0.4 + 0.6*0.5
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            parse_hourly_csv("", 1.0, 1.0).unwrap_err(),
            WorkloadFileError::Empty
        );
        assert_eq!(
            parse_hourly_csv("0\n", 1.0, 1.0).unwrap_err(),
            WorkloadFileError::BadLine { line: 1 }
        );
        assert_eq!(
            parse_hourly_csv("0,abc\n", 1.0, 1.0).unwrap_err(),
            WorkloadFileError::BadValue { line: 1 }
        );
        assert_eq!(
            parse_hourly_csv("0,100\n2,100\n", 1.0, 1.0).unwrap_err(),
            WorkloadFileError::BadHour { line: 2 }
        );
        assert_eq!(
            parse_hourly_csv("0,-5\n", 1.0, 1.0).unwrap_err(),
            WorkloadFileError::BadValue { line: 1 }
        );
    }

    #[test]
    fn loaded_trace_feeds_the_simulator_interface() {
        let csv = "0,1000,10\n1,2000,20\n";
        let t = parse_hourly_csv(csv, 10_000.0, 8.0).unwrap();
        // The standard accessors work (zero-order hold, clamping).
        assert!((t.rate_at(0) - 5_000.0).abs() < 1e-6);
        assert!((t.rate_at(3_600) - 10_000.0).abs() < 1e-6);
        assert!((t.rate_at(1_000_000) - 10_000.0).abs() < 1e-6);
    }
}
