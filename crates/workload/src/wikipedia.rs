//! A Wikipedia-shaped diurnal workload trace (paper Section 5.1).
//!
//! The paper scales the Wikipedia access trace (Urdaneta et al., 2009) "to
//! create workloads with different peak arrival rates and maximum working
//! set sizes". The published trace's salient shape is a strong diurnal
//! cycle (peak-to-trough ≈ 2:1), a mild weekly cycle (weekends ~10% lower),
//! and small high-frequency noise. This module generates an hourly trace
//! with exactly that structure from a seed, then rescales it to any
//! requested peak rate and maximum working-set size — preserving the
//! paper's methodology with a synthetic stand-in for the raw trace file.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An hourly arrival-rate / working-set trace.
#[derive(Debug, Clone)]
pub struct WikipediaTrace {
    /// Request arrival rate per hour slot, ops/sec.
    pub hourly_rates: Vec<f64>,
    /// Working-set size per hour slot, GiB.
    pub hourly_wss_gb: Vec<f64>,
}

impl WikipediaTrace {
    /// Generates a `days`-long trace scaled so the peak arrival rate is
    /// `peak_ops` and the maximum working-set size is `max_wss_gb`.
    ///
    /// The working set follows the diurnal shape with a compressed dynamic
    /// range (the paper's prototype sweeps 25–60 GB, i.e. trough ≈ 0.4 ×
    /// peak), because content corpus size varies less than request rate.
    ///
    /// # Panics
    ///
    /// Panics if `days == 0` or either scale is non-positive.
    pub fn generate(days: u64, peak_ops: f64, max_wss_gb: f64, seed: u64) -> Self {
        assert!(days > 0, "empty trace");
        assert!(peak_ops > 0.0 && max_wss_gb > 0.0, "non-positive scale");
        let mut rng = StdRng::seed_from_u64(seed);
        let hours = (days * 24) as usize;
        let mut shape = Vec::with_capacity(hours);
        for h in 0..hours {
            let hour_of_day = (h % 24) as f64;
            let day = h / 24;
            // Diurnal: peak around 20:00 UTC, trough around 08:00.
            let diurnal = 1.0 + 0.35 * (std::f64::consts::TAU * (hour_of_day - 14.0) / 24.0).sin();
            // Weekly: ~10% dip on days 5 and 6 of each week.
            let weekly = if day % 7 >= 5 { 0.9 } else { 1.0 };
            let noise = 1.0 + 0.04 * (rng.gen::<f64>() - 0.5);
            shape.push(diurnal * weekly * noise);
        }
        let peak_shape = shape.iter().copied().fold(f64::MIN, f64::max);
        let hourly_rates: Vec<f64> = shape.iter().map(|s| s / peak_shape * peak_ops).collect();
        // Working set: same shape, compressed toward the peak.
        let hourly_wss_gb: Vec<f64> = shape
            .iter()
            .map(|s| {
                let frac = s / peak_shape; // in (0, 1]
                (0.4 + 0.6 * frac) * max_wss_gb
            })
            .collect();
        Self {
            hourly_rates,
            hourly_wss_gb,
        }
    }

    /// Number of hour slots.
    pub fn hours(&self) -> usize {
        self.hourly_rates.len()
    }

    /// Arrival rate (ops/sec) in the slot containing second `t`.
    pub fn rate_at(&self, t: u64) -> f64 {
        let idx = ((t / 3_600) as usize).min(self.hours() - 1);
        self.hourly_rates[idx]
    }

    /// Working-set size (GiB) in the slot containing second `t`.
    pub fn wss_at(&self, t: u64) -> f64 {
        let idx = ((t / 3_600) as usize).min(self.hours() - 1);
        self.hourly_wss_gb[idx]
    }

    /// Peak arrival rate over the whole trace.
    pub fn peak_rate(&self) -> f64 {
        self.hourly_rates.iter().copied().fold(f64::MIN, f64::max)
    }

    /// Maximum working-set size over the whole trace.
    pub fn max_wss(&self) -> f64 {
        self.hourly_wss_gb.iter().copied().fold(f64::MIN, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_to_requested_peaks() {
        let t = WikipediaTrace::generate(30, 320_000.0, 60.0, 1);
        assert!((t.peak_rate() - 320_000.0).abs() < 1.0);
        assert!((t.max_wss() - 60.0).abs() < 1e-6);
        assert_eq!(t.hours(), 720);
    }

    #[test]
    fn diurnal_swing_is_realistic() {
        let t = WikipediaTrace::generate(7, 100_000.0, 100.0, 2);
        let min = t.hourly_rates.iter().copied().fold(f64::MAX, f64::min);
        let ratio = t.peak_rate() / min;
        assert!((1.5..=3.5).contains(&ratio), "peak/trough {ratio}");
    }

    #[test]
    fn wss_range_matches_prototype_sweep() {
        // Paper prototype: "dynamic working set size to 25-60GB".
        let t = WikipediaTrace::generate(30, 320_000.0, 60.0, 3);
        let min = t.hourly_wss_gb.iter().copied().fold(f64::MAX, f64::min);
        assert!(min > 20.0 && min < 40.0, "min WSS {min}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = WikipediaTrace::generate(5, 1000.0, 10.0, 9);
        let b = WikipediaTrace::generate(5, 1000.0, 10.0, 9);
        let c = WikipediaTrace::generate(5, 1000.0, 10.0, 10);
        assert_eq!(a.hourly_rates, b.hourly_rates);
        assert_ne!(a.hourly_rates, c.hourly_rates);
    }

    #[test]
    fn lookups_clamp_past_end() {
        let t = WikipediaTrace::generate(1, 1000.0, 10.0, 4);
        assert_eq!(t.rate_at(10_000_000), t.hourly_rates[23]);
        assert!(t.rate_at(0) > 0.0);
        assert!(t.wss_at(3_599) == t.hourly_wss_gb[0]);
    }

    #[test]
    fn weekend_dip_present() {
        let t = WikipediaTrace::generate(14, 100_000.0, 100.0, 5);
        let weekday_avg: f64 = t.hourly_rates[0..24].iter().sum::<f64>() / 24.0;
        let weekend_avg: f64 = t.hourly_rates[5 * 24..6 * 24].iter().sum::<f64>() / 24.0;
        assert!(weekend_avg < weekday_avg, "{weekend_avg} vs {weekday_avg}");
    }
}
