#![warn(missing_docs)]

//! Workload generation (paper Section 5.1).
//!
//! The paper drives its evaluation with (a) YCSB-generated request streams
//! with Zipfian popularity (parameter 0.5–2.0) and (b) the Wikipedia access
//! trace scaled to different peak arrival rates and working-set sizes. This
//! crate provides both:
//!
//! * [`zipf`] — the YCSB Zipfian and scrambled-Zipfian generators plus the
//!   analytic [`zipf::PopularityModel`] (`F(·)` in the paper's optimizer),
//! * [`wikipedia`] — a seeded diurnal arrival-rate / working-set trace with
//!   the Wikipedia trace's shape, rescalable to any peak, and
//! * [`ycsb`] — read-heavy request streams binding the two together.

pub mod churn;
pub mod facebook;
pub mod tracefile;
pub mod wikipedia;
pub mod ycsb;
pub mod zipf;

pub use churn::ChurnWorkload;
pub use facebook::{FacebookPool, FacebookWorkload};
pub use tracefile::{parse_hourly_csv, WorkloadFileError};
pub use wikipedia::WikipediaTrace;
pub use ycsb::{Request, RequestGenerator};
pub use zipf::{PopularityModel, ScrambledZipfian, Zipfian};
