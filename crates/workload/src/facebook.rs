//! Facebook memcached workload profiles (Atikoglu et al., SIGMETRICS'12 —
//! the paper's reference for "read-heavy workloads are the norm").
//!
//! Two of the published pools are modeled:
//!
//! * **USR** — user-account status: 99.8% GETs, fixed tiny values (2 bytes)
//!   under 16/21-byte keys, strongly skewed popularity. This is the
//!   workload the paper cites to justify its read-heavy focus.
//! * **ETC** — the general-purpose pool: ~97% GETs, wildly mixed value
//!   sizes (a few bytes to hundreds of KB, roughly Pareto-tailed), the
//!   stress case for slab-class capacity planning.

use rand::Rng;

use crate::ycsb::Request;
use crate::zipf::ScrambledZipfian;

/// Which published pool to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FacebookPool {
    /// User-account status pool (99.8% reads, 2-byte values).
    Usr,
    /// General-purpose pool (~97% reads, heavy-tailed values).
    Etc,
}

/// A Facebook-profile request generator.
#[derive(Debug, Clone)]
pub struct FacebookWorkload {
    pool: FacebookPool,
    keys: ScrambledZipfian,
}

impl FacebookWorkload {
    /// Published read fraction of the USR pool.
    pub const USR_READ_FRACTION: f64 = 0.998;
    /// Approximate read fraction of the ETC pool.
    pub const ETC_READ_FRACTION: f64 = 0.97;

    /// Creates a generator over `n` keys.
    pub fn new(pool: FacebookPool, n: u64) -> Self {
        // Atikoglu et al. report strong skew in both pools; USR's is the
        // stronger of the two.
        let theta = match pool {
            FacebookPool::Usr => 1.5,
            FacebookPool::Etc => 1.05,
        };
        Self {
            pool,
            keys: ScrambledZipfian::new(n, theta),
        }
    }

    /// The emulated pool.
    pub fn pool(&self) -> FacebookPool {
        self.pool
    }

    /// Read fraction of this pool.
    pub fn read_fraction(&self) -> f64 {
        match self.pool {
            FacebookPool::Usr => Self::USR_READ_FRACTION,
            FacebookPool::Etc => Self::ETC_READ_FRACTION,
        }
    }

    /// Draws the next request.
    pub fn next_request<R: Rng + ?Sized>(&self, rng: &mut R) -> Request {
        let key = self.keys.sample(rng);
        let is_read = rng.gen::<f64>() < self.read_fraction();
        let value_size = match self.pool {
            FacebookPool::Usr => 2,
            FacebookPool::Etc => sample_etc_value_size(rng),
        };
        Request {
            key,
            is_read,
            value_size,
        }
    }

    /// Mean value size of the pool, bytes (analytic, for capacity math).
    pub fn mean_value_size(&self) -> f64 {
        match self.pool {
            FacebookPool::Usr => 2.0,
            // Empirical mean of the sampler below.
            FacebookPool::Etc => {
                // Integrate the discrete mixture exactly.
                ETC_SIZE_TABLE
                    .iter()
                    .map(|&(p, lo, hi)| p * (lo + hi) as f64 / 2.0)
                    .sum()
            }
        }
    }

    /// Key size in bytes for a given key id (USR uses two fixed key sizes;
    /// ETC varies 16-40).
    pub fn key_size(&self, key: u64) -> usize {
        match self.pool {
            FacebookPool::Usr => {
                if key.is_multiple_of(2) {
                    16
                } else {
                    21
                }
            }
            FacebookPool::Etc => 16 + (key % 25) as usize,
        }
    }
}

/// ETC value-size mixture: `(probability, lo, hi)` byte ranges
/// approximating the published CDF (most values tiny, a heavy tail).
const ETC_SIZE_TABLE: &[(f64, usize, usize)] = &[
    (0.40, 2, 10),
    (0.30, 11, 100),
    (0.20, 101, 1_000),
    (0.07, 1_001, 10_000),
    (0.025, 10_001, 100_000),
    (0.005, 100_001, 500_000),
];

fn sample_etc_value_size<R: Rng + ?Sized>(rng: &mut R) -> usize {
    let mut u: f64 = rng.gen();
    for &(p, lo, hi) in ETC_SIZE_TABLE {
        if u < p {
            return rng.gen_range(lo..=hi);
        }
        u -= p;
    }
    8 // numerically unreachable fallback
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn usr_is_998_permille_reads_with_tiny_values() {
        let w = FacebookWorkload::new(FacebookPool::Usr, 100_000);
        let mut rng = StdRng::seed_from_u64(1);
        let mut reads = 0;
        for _ in 0..50_000 {
            let r = w.next_request(&mut rng);
            assert_eq!(r.value_size, 2);
            if r.is_read {
                reads += 1;
            }
        }
        let frac = reads as f64 / 50_000.0;
        assert!((frac - 0.998).abs() < 0.003, "{frac}");
        assert_eq!(w.mean_value_size(), 2.0);
    }

    #[test]
    fn usr_key_sizes_are_16_or_21() {
        let w = FacebookWorkload::new(FacebookPool::Usr, 1_000);
        for k in 0..100 {
            assert!(matches!(w.key_size(k), 16 | 21));
        }
    }

    #[test]
    fn etc_value_sizes_are_heavy_tailed() {
        let w = FacebookWorkload::new(FacebookPool::Etc, 100_000);
        let mut rng = StdRng::seed_from_u64(2);
        let sizes: Vec<usize> = (0..50_000)
            .map(|_| w.next_request(&mut rng).value_size)
            .collect();
        let small = sizes.iter().filter(|&&s| s <= 100).count() as f64 / sizes.len() as f64;
        let huge = sizes.iter().filter(|&&s| s > 10_000).count() as f64 / sizes.len() as f64;
        assert!((small - 0.70).abs() < 0.03, "small frac {small}");
        assert!((0.005..0.08).contains(&huge), "huge frac {huge}");
        // The mean is pulled far above the median by the tail.
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        assert!(mean > 10.0 * median, "mean {mean} vs median {median}");
    }

    #[test]
    fn etc_table_probabilities_sum_to_one() {
        let total: f64 = ETC_SIZE_TABLE.iter().map(|&(p, _, _)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pools_report_their_parameters() {
        let usr = FacebookWorkload::new(FacebookPool::Usr, 10);
        let etc = FacebookWorkload::new(FacebookPool::Etc, 10);
        assert_eq!(usr.pool(), FacebookPool::Usr);
        assert!(usr.read_fraction() > etc.read_fraction());
        assert!(etc.mean_value_size() > 1_000.0);
    }
}
