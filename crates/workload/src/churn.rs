//! Key-population churn: working sets that evolve over time.
//!
//! The paper's workloads vary in *size* (the Wikipedia trace's 25–60 GB
//! sweep); real cache populations also vary in *identity* — new content is
//! created, old content fades — which is what forces the key partitioner's
//! periodic refresh (Section 4.2: "if certain cold data becomes hot ...
//! re-assign prefixes"). This module models identity churn: a sliding
//! window of live keys advances at a configurable rate, and the Zipfian
//! popularity ranks are assigned to positions *within* the window, so
//! today's hottest key is gone from the hot set tomorrow.

use rand::Rng;

use crate::ycsb::Request;
use crate::zipf::Zipfian;

/// A churning Zipfian workload.
#[derive(Debug, Clone)]
pub struct ChurnWorkload {
    ranks: Zipfian,
    window: u64,
    /// Keys entering (and leaving) the window per second.
    keys_per_sec: f64,
    value_size: usize,
}

impl ChurnWorkload {
    /// Creates a workload over a window of `window` live keys with skew
    /// `theta`, where `churn_per_hour` is the fraction of the window
    /// replaced each hour.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` (via the Zipfian constructor) or
    /// `churn_per_hour` is negative.
    pub fn new(window: u64, theta: f64, churn_per_hour: f64) -> Self {
        assert!(churn_per_hour >= 0.0, "negative churn");
        Self {
            ranks: Zipfian::new(window, theta),
            window,
            keys_per_sec: churn_per_hour * window as f64 / 3_600.0,
            value_size: 4 * 1024,
        }
    }

    /// Overrides the value size.
    pub fn with_value_size(mut self, bytes: usize) -> Self {
        self.value_size = bytes;
        self
    }

    /// The first live key id at time `t` (seconds).
    pub fn window_start(&self, t: u64) -> u64 {
        (self.keys_per_sec * t as f64) as u64
    }

    /// The key id a popularity rank maps to at time `t`.
    ///
    /// Rank 0 is pinned to the *newest* end of the window (fresh content is
    /// hot, matching content-serving workloads); deeper ranks reach further
    /// back, scrambled so the hot set is not a contiguous id range.
    pub fn key_for_rank(&self, rank: u64, t: u64) -> u64 {
        let start = self.window_start(t);
        // Scramble rank over the window, biased so low ranks sit near the
        // window's fresh end.
        let pos = mix(rank) % self.window;
        start + self.window - 1 - pos.min(self.window - 1)
    }

    /// Draws the next request at time `t`.
    pub fn next_request<R: Rng + ?Sized>(&self, rng: &mut R, t: u64) -> Request {
        let rank = self.ranks.sample(rng);
        Request {
            key: self.key_for_rank(rank, t),
            is_read: true,
            value_size: self.value_size,
        }
    }

    /// Fraction of the hot set (top `hot_ranks` ranks) whose key ids are
    /// shared between times `t0` and `t1` — the survival rate the
    /// partitioner's refresh has to track.
    pub fn hot_set_overlap(&self, hot_ranks: u64, t0: u64, t1: u64) -> f64 {
        if hot_ranks == 0 {
            return 1.0;
        }
        let a: std::collections::HashSet<u64> =
            (0..hot_ranks).map(|r| self.key_for_rank(r, t0)).collect();
        let shared = (0..hot_ranks)
            .filter(|&r| a.contains(&self.key_for_rank(r, t1)))
            .count();
        shared as f64 / hot_ranks as f64
    }
}

fn mix(x: u64) -> u64 {
    let mut h = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_churn_is_static() {
        let w = ChurnWorkload::new(10_000, 0.99, 0.0);
        assert_eq!(w.window_start(0), 0);
        assert_eq!(w.window_start(1_000_000), 0);
        assert_eq!(w.key_for_rank(5, 0), w.key_for_rank(5, 1_000_000));
        assert_eq!(w.hot_set_overlap(100, 0, 1_000_000), 1.0);
    }

    #[test]
    fn churn_advances_the_window() {
        // 10% of a 36k-key window per hour = 1 key/sec.
        let w = ChurnWorkload::new(36_000, 0.99, 0.1);
        assert_eq!(w.window_start(0), 0);
        assert_eq!(w.window_start(3_600), 3_600);
        // All keys drawn at time t are inside [start, start + window).
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let k = w.next_request(&mut rng, 7_200).key;
            let start = w.window_start(7_200);
            assert!(k >= start && k < start + 36_000, "{k}");
        }
    }

    #[test]
    fn hot_set_decays_with_time() {
        let w = ChurnWorkload::new(36_000, 0.99, 0.1);
        let near = w.hot_set_overlap(200, 0, 600);
        let far = w.hot_set_overlap(200, 0, 12 * 3_600);
        assert_eq!(w.hot_set_overlap(200, 0, 0), 1.0);
        assert!(near >= far, "near {near} far {far}");
        assert!(
            far < 0.5,
            "after 12h of 10%/h churn most hot keys moved: {far}"
        );
    }

    #[test]
    fn ranks_map_to_distinct_keys() {
        let w = ChurnWorkload::new(100_000, 1.2, 0.05);
        let keys: std::collections::HashSet<u64> =
            (0..1_000).map(|r| w.key_for_rank(r, 0)).collect();
        assert!(
            keys.len() > 990,
            "{} distinct of 1000 (mix collisions)",
            keys.len()
        );
    }

    #[test]
    fn partitioner_tracks_churn_across_refreshes() {
        // End-to-end with the router's partitioner: after the window moves
        // and refreshes run, newly-hot keys get classified hot.
        use spotcache_router::partitioner::KeyPartitioner;
        let w = ChurnWorkload::new(10_000, 1.5, 2.0); // 200%/hour: fast churn
        let mut p = KeyPartitioner::new(50_000, 20);
        let mut rng = StdRng::seed_from_u64(9);
        let hot_at = |w: &ChurnWorkload, t: u64| w.key_for_rank(0, t);
        // Phase 1 at t=0.
        for _ in 0..5_000 {
            let r = w.next_request(&mut rng, 0);
            p.observe(&r.key.to_be_bytes());
        }
        assert!(p.is_hot(&hot_at(&w, 0).to_be_bytes()));
        // Window moves an hour on; refresh twice and re-observe.
        p.refresh();
        p.refresh();
        for _ in 0..5_000 {
            let r = w.next_request(&mut rng, 3_600);
            p.observe(&r.key.to_be_bytes());
        }
        assert!(
            p.is_hot(&hot_at(&w, 3_600).to_be_bytes()),
            "new hot key classified"
        );
    }

    #[test]
    #[should_panic(expected = "negative churn")]
    fn negative_churn_panics() {
        ChurnWorkload::new(100, 0.9, -0.1);
    }
}
