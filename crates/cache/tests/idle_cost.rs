//! The reactor's headline property, measured: idle connections cost zero
//! CPU. This test lives in its own integration binary so the process's
//! `/proc/self/stat` CPU accounting covers (almost) nothing but the
//! server under test.
//!
//! The old spin-then-sleep worker pool polled every connection every
//! 500 µs forever; a thousand idle connections kept a core measurably
//! busy doing nothing. The reactor parks every worker in `epoll_wait`,
//! so the same thousand connections cost *no* cycles until a byte
//! actually arrives — which is what lets a spot-instance cache node ride
//! out quiet periods on a burstable instance's baseline credits (the
//! paper's cost argument) instead of burning them on polling.

#![cfg(target_os = "linux")]

use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use spotcache_cache::server::{CacheClient, CacheServer, LogicalClock};
use spotcache_cache::store::{Store, StoreConfig};

/// Process CPU time (user + system) in clock ticks, from
/// `/proc/self/stat` fields 14 and 15. The comm field can contain spaces,
/// so parsing starts after the last `)`.
fn cpu_ticks() -> u64 {
    let stat = std::fs::read_to_string("/proc/self/stat").expect("read /proc/self/stat");
    let rest = &stat[stat.rfind(')').expect("comm field") + 2..];
    let fields: Vec<&str> = rest.split_whitespace().collect();
    // `rest` starts at overall field 3 (state), so utime (field 14) and
    // stime (field 15) are at indices 11 and 12 here.
    let utime: u64 = fields[11].parse().expect("utime");
    let stime: u64 = fields[12].parse().expect("stime");
    utime + stime
}

#[test]
fn a_thousand_idle_connections_cost_near_zero_cpu() {
    const CONNS: usize = 1_000;

    let store = Arc::new(Store::new(StoreConfig {
        capacity_bytes: 16 << 20,
        shards: 8,
    }));
    let clock = LogicalClock::new();
    let mut server = CacheServer::start(Arc::clone(&store), clock, "127.0.0.1:0").unwrap();
    let addr = server.addr();

    // Open the fleet and hold it open, idle.
    let conns: Vec<TcpStream> = (0..CONNS)
        .map(|i| {
            TcpStream::connect(addr)
                .unwrap_or_else(|e| panic!("connect #{i} failed: {e} (check `ulimit -n`)"))
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.active_connections() < CONNS {
        assert!(
            Instant::now() < deadline,
            "only {} of {CONNS} connections adopted",
            server.active_connections()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Let accept/adoption churn settle, then measure a 2 s idle window.
    std::thread::sleep(Duration::from_millis(200));
    let t0 = cpu_ticks();
    std::thread::sleep(Duration::from_secs(2));
    let spent = cpu_ticks() - t0;

    // "Near zero": allow a generous 25 ticks (250 ms of CPU at the
    // standard CLK_TCK=100) for kernel bookkeeping and the test's own
    // sleeps — the polling pool burned vastly more; a truly parked
    // reactor spends ~0.
    assert!(
        spent <= 25,
        "{CONNS} idle connections burned {spent} ticks (~{} ms CPU) over a 2 s window",
        spent * 10
    );

    // The parked server is still alive: a fresh client gets served.
    let mut c = CacheClient::connect(addr).unwrap();
    assert_eq!(c.set("still-alive", b"yes", 0).unwrap(), "STORED");
    assert_eq!(
        c.get("still-alive").unwrap().as_deref(),
        Some(b"yes".as_ref())
    );

    // And shutdown stays prompt with the whole idle fleet open.
    let t0 = Instant::now();
    server.stop();
    let took = t0.elapsed();
    assert!(
        took < Duration::from_millis(250),
        "stop() took {took:?} with {CONNS} idle connections open"
    );
    drop(conns);
}

/// A half-closed connection with a full write backlog must *park*, not
/// spin: the client pipelines a large response backlog, half-closes its
/// write side (so the server sees `EPOLLRDHUP`), and then reads nothing.
/// The server writes until the socket buffer fills and must then sleep in
/// `epoll_wait` — a reactor that leaves read/RDHUP interest armed on the
/// drained, half-closed socket would wake continuously instead.
/// (Distilled from a PR 7 scratch test; the slow-*reader* variant also
/// measured legitimate write work and was too machine-dependent.)
#[test]
fn half_closed_backpressured_reader_parks() {
    let store = Arc::new(Store::new(StoreConfig {
        capacity_bytes: 64 << 20,
        shards: 8,
    }));
    let clock = LogicalClock::new();
    let mut server = CacheServer::start(Arc::clone(&store), clock, "127.0.0.1:0").unwrap();
    let addr = server.addr();

    // Store a large value, then pipeline many gets and half-close.
    let mut c = CacheClient::connect(addr).unwrap();
    let val = vec![b'v'; 16 * 1024];
    c.set("big", &val, 0).unwrap();
    drop(c);

    let s = TcpStream::connect(addr).unwrap();
    let mut w = &s;
    let req = "get big\r\n".repeat(4000); // ~64 MiB of responses
    w.write_all(req.as_bytes()).unwrap();
    s.shutdown(Shutdown::Write).unwrap();

    // Let the server fill the socket buffer and hit backpressure, then
    // measure a 2 s window in which the client reads *nothing*: every
    // worker should be parked the whole time.
    std::thread::sleep(Duration::from_millis(500));
    let t0 = cpu_ticks();
    std::thread::sleep(Duration::from_secs(2));
    let spent = cpu_ticks() - t0;
    assert!(
        spent <= 25,
        "hot spin on half-closed backpressured socket: {spent} ticks (~{} ms CPU)",
        spent * 10
    );
    server.stop();
    drop(s);
}
