//! Replay-convergence properties of the replication stream.
//!
//! The shipper re-sends whole batches after any link fault and the
//! warm-up pump replays a point-in-time snapshot over whatever live
//! replication already delivered — so the correctness of the whole
//! recovery story rests on replay being *idempotent* (applying a stream
//! again changes nothing) and, for set-only streams, *order-insensitive
//! across keys* (any interleaving that preserves each key's own write
//! order converges to the same store). Per-key order is the exact
//! guarantee the mutation tap provides: `Store::set_many_at` may tap
//! keys of different shards out of input order, but two writes to the
//! same key always tap in order (same key → same shard).

use proptest::prelude::*;
use spotcache_cache::replication::{Mutation, ReplicationQueue};
use spotcache_cache::store::{Store, StoreConfig};

fn fresh_store() -> Store {
    Store::new(StoreConfig {
        capacity_bytes: 4 << 20,
        shards: 4,
    })
}

/// Applies `ops` as sets to `store` (through the mutation tap when a
/// queue is installed) over a 10-key space.
fn apply_ops(store: &Store, ops: &[(u8, u8)]) {
    for &(kid, val) in ops {
        let key = format!("h{}", kid % 10);
        let value = vec![val; 1 + (val % 7) as usize];
        store.set(key.into_bytes(), value);
    }
}

/// Reorders `muts` while preserving each key's own order: mutations are
/// split into per-key FIFO queues and reassembled by `picks`.
fn reorder_preserving_per_key(muts: &[Mutation], picks: &[u8]) -> Vec<Mutation> {
    let mut buckets: Vec<(Vec<u8>, std::collections::VecDeque<Mutation>)> = Vec::new();
    for m in muts {
        let key = m.key().to_vec();
        match buckets.iter_mut().find(|(k, _)| *k == key) {
            Some((_, q)) => q.push_back(m.clone()),
            None => {
                let mut q = std::collections::VecDeque::new();
                q.push_back(m.clone());
                buckets.push((key, q));
            }
        }
    }
    let mut out = Vec::with_capacity(muts.len());
    let mut pick_idx = 0usize;
    while buckets.iter().any(|(_, q)| !q.is_empty()) {
        let nonempty: Vec<usize> = buckets
            .iter()
            .enumerate()
            .filter(|(_, (_, q))| !q.is_empty())
            .map(|(i, _)| i)
            .collect();
        let choice = picks.get(pick_idx).copied().unwrap_or(0) as usize % nonempty.len();
        pick_idx += 1;
        out.push(buckets[nonempty[choice]].1.pop_front().unwrap());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Set-only streams converge under per-key-order-preserving
    /// reordering plus arbitrary per-mutation duplication — the
    /// superset of every reordering/re-send the shipper and pump can
    /// produce.
    #[test]
    fn set_only_replay_is_order_insensitive_and_duplication_proof(
        ops in proptest::collection::vec((0u8..10, 0u8..=255u8), 1..60),
        picks in proptest::collection::vec(0u8..=255u8, 0..80),
        dups in proptest::collection::vec(1usize..4, 0..80),
    ) {
        let source = fresh_store();
        let queue = ReplicationQueue::new(1024, None);
        source.set_mutation_sink(Some(queue.clone()));
        apply_ops(&source, &ops);
        let mut tapped = Vec::new();
        queue.drain_into(&mut tapped, usize::MAX);
        prop_assert_eq!(tapped.len(), ops.len());

        // Reorder across keys, then duplicate each mutation in place
        // (a duplicated set is a re-shipped batch; in-place duplication
        // keeps per-key order, which re-shipping also does).
        let reordered = reorder_preserving_per_key(&tapped, &picks);
        let mut replay = Vec::new();
        for (i, m) in reordered.iter().enumerate() {
            for _ in 0..dups.get(i).copied().unwrap_or(1) {
                replay.push(m.clone());
            }
        }

        let backup = fresh_store();
        for m in &replay {
            m.apply(&backup, 0);
        }
        for kid in 0..10u8 {
            let key = format!("h{kid}");
            prop_assert_eq!(
                source.get(key.as_bytes()),
                backup.get(key.as_bytes()),
                "key {} diverged", key
            );
        }
    }

    /// Whole-stream replay is idempotent even with deletes in the mix,
    /// as long as order is preserved — replaying the entire tape again
    /// (the pump re-running after a crash) lands in the same state.
    #[test]
    fn in_order_replay_is_idempotent_with_deletes(
        ops in proptest::collection::vec((0u8..10, 0u8..=255u8, 0u8..=1), 1..60),
        replays in 2usize..4,
    ) {
        let source = fresh_store();
        let queue = ReplicationQueue::new(1024, None);
        source.set_mutation_sink(Some(queue.clone()));
        for &(kid, val, del) in &ops {
            let key = format!("h{}", kid % 10);
            if del == 1 {
                source.delete(key.as_bytes());
            } else {
                source.set(key.into_bytes(), vec![val; 1 + (val % 7) as usize]);
            }
        }
        let mut tape = Vec::new();
        queue.drain_into(&mut tape, usize::MAX);

        let backup = fresh_store();
        for _ in 0..replays {
            for m in &tape {
                m.apply(&backup, 0);
            }
        }
        for kid in 0..10u8 {
            let key = format!("h{kid}");
            prop_assert_eq!(
                source.get(key.as_bytes()),
                backup.get(key.as_bytes()),
                "key {} diverged", key
            );
        }
    }
}
