//! Equivalence between the two read planes (ISSUE 8 satellite).
//!
//! The deferred plane (shared-lock GETs + touch rings + TTL wheel) must be
//! observably equivalent to the frozen inline plane:
//!
//! * **Byte-identical results.** Over arbitrary GET/SET/DELETE/`add`/
//!   `replace` interleavings — including eviction pressure — every
//!   operation returns exactly the same bytes/outcome on both planes.
//!   Recency-sensitive state (eviction order) matches whenever touches are
//!   flushed before the eviction happens; since every writer flushes
//!   opportunistically, any single-threaded sequence matches *without* an
//!   explicit flush.
//! * **Counters within the approximation bound.** `hits`/`misses`/`sets`/
//!   `deletes`/`evictions` match exactly. `expirations` may differ: the
//!   inline plane counts an expired item only when something collides with
//!   it, the wheel counts every reaped record — both are bounded by the
//!   number of TTL'd inserts.
//! * **Per-worker touch order.** Touches from one thread are applied in
//!   the order they were recorded (never reordered), and a drop-oldest
//!   overflow only makes a key *colder*, never hotter.

use bytes::Bytes;
use proptest::prelude::*;
use spotcache_cache::store::{ReadPath, ReadPathConfig, SetOutcome, SetPolicy, Store, StoreConfig};

fn pair(capacity: usize, lanes: usize, lane_capacity: usize) -> (Store, Store) {
    let cfg = StoreConfig {
        capacity_bytes: capacity,
        shards: 2,
    };
    let deferred = Store::with_read_path(
        cfg,
        ReadPathConfig {
            mode: ReadPath::Deferred,
            lanes,
            lane_capacity,
        },
    );
    let inline = Store::with_read_path(
        cfg,
        ReadPathConfig {
            mode: ReadPath::Inline,
            ..ReadPathConfig::default()
        },
    );
    (deferred, inline)
}

/// One generated operation: `(op, key, size, ttl, now)` with small key and
/// time domains so collisions, overwrites, and expiries actually happen.
type Op = (u8, u8, u16, u8, u8);

fn key_of(k: u8) -> Vec<u8> {
    format!("key-{k}").into_bytes()
}

/// Applies one op at logical time `clock`. The caller advances the clock
/// monotonically — the store's clock contract (a wheel reap at time `t`
/// must never be followed by a query at an earlier time).
fn apply_op(
    s: &Store,
    (op, k, size, ttl, _dt): Op,
    clock: u64,
) -> (Option<Bytes>, Option<SetOutcome>, Option<bool>) {
    let key = key_of(k);
    let now = clock;
    match op % 5 {
        0 => (s.get_at(&key, now), None, None),
        1 => {
            s.set_at(
                key,
                vec![k ^ size as u8; size as usize],
                now,
                (ttl > 0).then_some(ttl as u64),
            );
            (None, None, None)
        }
        2 => (None, None, Some(s.delete_at(&key, now))),
        3 => (
            None,
            Some(s.set_policy_at(
                key,
                vec![b'a'; size as usize],
                now,
                (ttl > 0).then_some(ttl as u64),
                SetPolicy::IfAbsent,
            )),
            None,
        ),
        _ => (
            None,
            Some(s.set_policy_at(
                key,
                vec![b'r'; size as usize],
                now,
                (ttl > 0).then_some(ttl as u64),
                SetPolicy::IfPresent,
            )),
            None,
        ),
    }
}

proptest! {
    /// No-TTL workloads under eviction pressure: every result and every
    /// counter (including evictions) is byte-identical, with the deferred
    /// plane flushed only by its own writers.
    #[test]
    fn no_ttl_sequences_are_byte_identical(
        ops in proptest::collection::vec((0u8..5, 0u8..40, 0u16..1500, 0u8..1, 0u8..1), 1..250)
    ) {
        let (d, i) = pair(16 * 1024, 1, 1024);
        for op in ops {
            let rd = apply_op(&d, op, 0);
            let ri = apply_op(&i, op, 0);
            prop_assert_eq!(rd, ri);
        }
        prop_assert_eq!(d.stats(), i.stats(), "all counters identical without TTLs");
        // Final contents identical too (order-insensitive compare).
        let mut cd = d.hot_snapshot_at(usize::MAX, 0);
        let mut ci = i.hot_snapshot_at(usize::MAX, 0);
        cd.sort();
        ci.sort();
        prop_assert_eq!(cd, ci);
    }

    /// TTL'd workloads without eviction pressure: results stay
    /// byte-identical (expiry is checked on read on both planes) and the
    /// counters stay within the documented approximation bound.
    #[test]
    fn ttl_sequences_serve_identical_results(
        ops in proptest::collection::vec((0u8..5, 0u8..30, 0u16..200, 0u8..10, 0u8..5), 1..250)
    ) {
        let (d, i) = pair(1 << 20, 1, 1024);
        let mut clock = 0u64;
        let mut ttl_sets = 0u64;
        for op in ops {
            clock += op.4 as u64; // time moves forward as ops execute
            let rd = apply_op(&d, op, clock);
            let ri = apply_op(&i, op, clock);
            prop_assert_eq!(rd, ri);
            if matches!(op.0 % 5, 1 | 3 | 4) && op.3 > 0 {
                ttl_sets += 1;
            }
        }
        // Reap everything reapable, then compare within the bound.
        d.flush_touches(clock + 1000);
        let (sd, si) = (d.stats(), i.stats());
        prop_assert_eq!(sd.hits, si.hits);
        prop_assert_eq!(sd.misses, si.misses);
        prop_assert_eq!(sd.sets, si.sets);
        prop_assert_eq!(sd.deletes, si.deletes);
        prop_assert_eq!(sd.evictions, 0u64);
        prop_assert_eq!(si.evictions, 0u64);
        // Approximation bound: both planes count each TTL'd insert at most
        // once, and the wheel never reaps less than an unlucky-GET plane
        // observes *after a full reap* — the live item sets must agree.
        prop_assert!(sd.expirations <= ttl_sets);
        prop_assert!(si.expirations <= ttl_sets);
        let now = clock + 1000;
        let mut cd = d.hot_snapshot_at(usize::MAX, now);
        let mut ci = i.hot_snapshot_at(usize::MAX, now);
        cd.sort();
        ci.sort();
        prop_assert_eq!(cd, ci, "live items agree after a full reap");
    }
}

/// Per-worker order: touches recorded by one thread are applied in
/// exactly the order they were made, so a flush leaves the same LRU order
/// as inline touching.
#[test]
fn touch_order_within_a_worker_is_preserved() {
    let (d, i) = pair(16 * 1024, 1, 1024);
    for k in 0..8u8 {
        let op = (1u8, k, 500u16, 0u8, 0u8);
        apply_op(&d, op, 0);
        apply_op(&i, op, 0);
    }
    // A deliberately shuffled touch sequence, no flush in between.
    for k in [3u8, 1, 4, 1, 5, 2, 6, 3] {
        assert!(d.get(&key_of(k)).is_some());
        assert!(i.get(&key_of(k)).is_some());
    }
    d.flush_touches(0);
    // Recency order must now be identical: walk both stores hottest-first.
    let order_d: Vec<_> = d
        .hot_snapshot_at(usize::MAX, 0)
        .into_iter()
        .map(|(k, _, _)| k)
        .collect();
    let order_i: Vec<_> = i
        .hot_snapshot_at(usize::MAX, 0)
        .into_iter()
        .map(|(k, _, _)| k)
        .collect();
    assert_eq!(order_d, order_i);
}

/// Drop-oldest overflow only loses the *oldest* pending touches: the most
/// recent `lane_capacity` touches survive, so a hot key can look colder
/// than it is but never hotter.
#[test]
fn overflow_drops_make_keys_colder_never_hotter() {
    // Lane capacity 4 (rounded to a power of two), 12 distinct touches,
    // one shard so a single ring sees every touch.
    let d = Store::with_read_path(
        StoreConfig {
            capacity_bytes: 64 * 1024,
            shards: 1,
        },
        ReadPathConfig {
            mode: ReadPath::Deferred,
            lanes: 1,
            lane_capacity: 4,
        },
    );
    for k in 0..12u8 {
        let op = (1u8, k, 100u16, 0u8, 0u8);
        apply_op(&d, op, 0);
    }
    for k in 0..12u8 {
        assert!(d.get(&key_of(k)).is_some());
    }
    let rep = d.flush_touches(0);
    assert_eq!(
        rep.drained, 4,
        "ring kept only the newest lane_capacity touches"
    );
    assert_eq!(rep.applied, 4);
    // The surviving touches are the newest ones, applied in order: the
    // hottest keys must be 11, 10, 9, 8 — untouched recency for the rest.
    let order: Vec<_> = d
        .hot_snapshot_at(4, 0)
        .into_iter()
        .map(|(k, _, _)| k)
        .collect();
    let want: Vec<Bytes> = [11u8, 10, 9, 8]
        .iter()
        .map(|&k| Bytes::from(key_of(k)))
        .collect();
    assert_eq!(order, want);
}

/// Eviction victims always come from the true LRU tail modulo unflushed
/// touches — and since every writer flushes first, a single-threaded
/// writer can never observe a stale tail.
#[test]
fn eviction_respects_flushed_recency() {
    let (d, i) = pair(16 * 1024, 1, 1024);
    // Two shards: fill one shard close to capacity.
    for k in 0..14u8 {
        let op = (1u8, k, 900u16, 0u8, 0u8);
        apply_op(&d, op, 0);
        apply_op(&i, op, 0);
    }
    // Touch the oldest keys, then force evictions with fresh inserts.
    for k in 0..4u8 {
        d.get(&key_of(k));
        i.get(&key_of(k));
    }
    for k in 100..106u8 {
        let op = (1u8, k, 900u16, 0u8, 0u8);
        apply_op(&d, op, 0);
        apply_op(&i, op, 0);
    }
    for k in 0..4u8 {
        assert_eq!(
            d.contains(&key_of(k)),
            i.contains(&key_of(k)),
            "touched key {k} must share its fate across planes"
        );
    }
    assert_eq!(d.stats().evictions, i.stats().evictions);
}
