//! Steady-state allocation accounting for the protocol response path.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warm-up pass (which sizes the thread-local scratch and the reusable
//! output buffer), serving pipelined get hits, get misses, delete misses,
//! and parse errors must allocate **nothing**. Storage commands allocate
//! only the store-side key/value copies: a `set` with a reply and the
//! same `set noreply` must allocate identically, proving the response
//! writer itself adds zero allocations.
//!
//! This file holds exactly one `#[test]` so no concurrent test can
//! perturb the global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use spotcache_cache::protocol::{serve_into, serve_traced_into};
use spotcache_cache::store::{Store, StoreConfig};
use spotcache_obs::Tracer;

struct CountingAlloc;

// Per-thread counting: a process-global counter also picks up stray
// allocations from the libtest harness's own threads, which made the
// zero-allocation assertions flaky. Const-initialized TLS is itself
// allocation-free, and `try_with` tolerates thread teardown.
thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        bump();
        System.alloc(l)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(p, l, new_size)
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(l)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.try_with(Cell::get).unwrap_or(0)
}

#[test]
fn response_path_is_allocation_free_in_steady_state() {
    let store = Store::new(StoreConfig {
        capacity_bytes: 4 << 20,
        shards: 4,
    });

    // Populate the keys the read-path buffer will hit.
    let mut prefill = Vec::new();
    for i in 0..16 {
        prefill
            .extend_from_slice(format!("set key{i} 7 0 32\r\n{}\r\n", "v".repeat(32)).as_bytes());
    }
    let mut out = Vec::new();
    assert_eq!(serve_into(&store, &prefill, 0, &mut out), prefill.len());

    // The read-path workload: pipelined single- and multi-key get hits,
    // misses, delete misses, and two flavours of parse error.
    let mut input = Vec::new();
    for i in 0..16 {
        input.extend_from_slice(format!("get key{i}\r\n").as_bytes());
        input.extend_from_slice(format!("get key{i} key{} nokey{i}\r\n", (i + 3) % 16).as_bytes());
        input.extend_from_slice(format!("get missing{i}\r\n").as_bytes());
        input.extend_from_slice(format!("delete missing{i}\r\n").as_bytes());
        input.extend_from_slice(b"bogus junk\r\n");
        input.extend_from_slice(b"get\r\n");
    }

    // Warm up: first pass grows the output buffer and the thread-local
    // serve scratch to their steady-state sizes.
    for _ in 0..3 {
        out.clear();
        assert_eq!(serve_into(&store, &input, 0, &mut out), input.len());
    }

    let before = allocs();
    for _ in 0..100 {
        out.clear();
        let consumed = serve_into(&store, &input, 0, &mut out);
        assert_eq!(consumed, input.len());
    }
    let read_path_allocs = allocs() - before;
    assert_eq!(
        read_path_allocs, 0,
        "hits/misses/errors must not allocate in steady state"
    );

    // Tracing compiled in but disabled must keep the guarantee: the
    // traced entry point with a switched-off tracer is the same hot path
    // plus one relaxed atomic load per span point.
    let tracer = Tracer::disabled();
    for _ in 0..3 {
        out.clear();
        serve_traced_into(&store, &input, 0, Some(&tracer), &mut out);
    }
    let before = allocs();
    for _ in 0..100 {
        out.clear();
        let consumed = serve_traced_into(&store, &input, 0, Some(&tracer), &mut out);
        assert_eq!(consumed, input.len());
    }
    assert_eq!(
        allocs() - before,
        0,
        "a disabled tracer must not allocate on the read path"
    );

    // Storage commands: overwriting sets in steady state. The replied
    // and noreply variants must allocate identically — the store copies
    // the key and value either way, and the STORED line must cost
    // nothing on top.
    let mut set_reply = Vec::new();
    let mut set_noreply = Vec::new();
    for i in 0..16 {
        let v = "w".repeat(32);
        set_reply.extend_from_slice(format!("set key{i} 7 0 32\r\n{v}\r\n").as_bytes());
        set_noreply.extend_from_slice(format!("set key{i} 7 0 32 noreply\r\n{v}\r\n").as_bytes());
    }
    for _ in 0..3 {
        out.clear();
        serve_into(&store, &set_reply, 0, &mut out);
        out.clear();
        serve_into(&store, &set_noreply, 0, &mut out);
    }

    let before = allocs();
    for _ in 0..50 {
        out.clear();
        serve_into(&store, &set_reply, 0, &mut out);
    }
    let replied = allocs() - before;

    let before = allocs();
    for _ in 0..50 {
        out.clear();
        serve_into(&store, &set_noreply, 0, &mut out);
    }
    let silent = allocs() - before;

    assert_eq!(
        replied, silent,
        "a STORED reply must not add allocations over noreply"
    );
}
