//! Data-plane integration tests: the pipelined serving path must be
//! invisible to clients. Splitting a command stream at arbitrary byte
//! boundaries, batching runs of `get`s, and multiplexing connections
//! across the worker pool may change *how* commands execute, but never
//! the bytes that come back or the store state left behind.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use proptest::prelude::*;
use spotcache_cache::protocol::{serve, serve_into, serve_traced_into};
use spotcache_cache::server::{CacheServer, DataPlane, LogicalClock, ServerConfig};
use spotcache_cache::store::{Store, StoreConfig};
use spotcache_obs::Tracer;

fn fresh_store() -> Store {
    Store::new(StoreConfig {
        capacity_bytes: 4 << 20,
        shards: 4,
    })
}

/// Renders op tuples into a protocol stream over a small shared key space,
/// so the mix includes hits, misses, overwrites, deletes of live and dead
/// keys, contended `add`s, multi-key `get`s, and parse errors.
fn build_stream(ops: &[(u8, u8, u8)]) -> Vec<u8> {
    let mut buf = Vec::new();
    for &(op, kid, x) in ops {
        let k = kid % 12;
        match op % 7 {
            0 | 1 => {
                let len = (x % 40) as usize;
                let val = vec![b'a' + (x % 26); len];
                buf.extend_from_slice(format!("set key{k} {x} 0 {len}\r\n").as_bytes());
                buf.extend_from_slice(&val);
                buf.extend_from_slice(b"\r\n");
            }
            2 => buf.extend_from_slice(format!("get key{k}\r\n").as_bytes()),
            3 => buf.extend_from_slice(
                format!("get key{k} key{} key{}\r\n", (k + 1) % 12, (k + 5) % 12).as_bytes(),
            ),
            4 => buf.extend_from_slice(format!("delete key{k}\r\n").as_bytes()),
            5 => buf.extend_from_slice(format!("add key{k} 0 0 1\r\ny\r\n").as_bytes()),
            _ => buf.extend_from_slice(b"bogus junk\r\n"),
        }
    }
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Feeding a stream in arbitrary chunks through the incremental
    /// `serve_into` path produces byte-identical output — and an
    /// identical store — to single-shot `serve` over the whole buffer.
    #[test]
    fn chunked_serving_matches_single_shot(
        ops in proptest::collection::vec((0u8..7, 0u8..12, 0u8..=255u8), 1..40),
        cuts in proptest::collection::vec(0u32..1000, 0..8),
    ) {
        let input = build_stream(&ops);

        let s1 = fresh_store();
        let (expect, consumed_single) = serve(&s1, &input, 0);

        let mut points: Vec<usize> = cuts
            .iter()
            .map(|&c| c as usize * input.len() / 1000)
            .collect();
        points.push(input.len());
        points.sort_unstable();

        let s2 = fresh_store();
        let mut pending: Vec<u8> = Vec::new();
        let mut out = Vec::new();
        let mut fed = 0usize;
        for &p in &points {
            if p > fed {
                pending.extend_from_slice(&input[fed..p]);
                fed = p;
            }
            let n = serve_into(&s2, &pending, 0, &mut out);
            pending.drain(..n);
        }

        prop_assert_eq!(&out, &expect, "response bytes diverged");
        prop_assert_eq!(input.len() - pending.len(), consumed_single);
        prop_assert_eq!(s2.stats(), s1.stats());
        prop_assert_eq!(s2.len(), s1.len());
        prop_assert_eq!(s2.used_bytes(), s1.used_bytes());
    }

    /// The same chunk-boundary property with span tracing ENABLED: the
    /// tracer records on the side, and the wire bytes, consumed count,
    /// and store state stay byte-identical to the untraced single shot.
    #[test]
    fn chunked_serving_with_tracing_matches_single_shot(
        ops in proptest::collection::vec((0u8..7, 0u8..12, 0u8..=255u8), 1..40),
        cuts in proptest::collection::vec(0u32..1000, 0..8),
    ) {
        let input = build_stream(&ops);

        let s1 = fresh_store();
        let (expect, consumed_single) = serve(&s1, &input, 0);

        let mut points: Vec<usize> = cuts
            .iter()
            .map(|&c| c as usize * input.len() / 1000)
            .collect();
        points.push(input.len());
        points.sort_unstable();

        let tracer = Tracer::all(1 << 16);
        let s2 = fresh_store();
        let mut pending: Vec<u8> = Vec::new();
        let mut out = Vec::new();
        let mut fed = 0usize;
        for &p in &points {
            if p > fed {
                pending.extend_from_slice(&input[fed..p]);
                fed = p;
            }
            let n = serve_traced_into(&s2, &pending, 0, Some(&tracer), &mut out);
            pending.drain(..n);
        }

        prop_assert_eq!(&out, &expect, "tracing perturbed the wire output");
        prop_assert_eq!(input.len() - pending.len(), consumed_single);
        prop_assert_eq!(s2.stats(), s1.stats());
        prop_assert!(tracer.len() > 0, "enabled tracer recorded nothing");
        prop_assert!(tracer.spans().iter().all(|r| r.cat == "protocol"));
    }

    /// The readiness reactor and the legacy thread pool are
    /// interchangeable data planes: the same op stream, written over TCP
    /// at the same arbitrary chunk boundaries, comes back byte-identical
    /// from both — and identical to single-shot `serve` — leaving
    /// identical store state behind. (Off Linux both requests resolve to
    /// the pool and the property degenerates to self-consistency.)
    #[test]
    fn reactor_and_thread_pool_planes_are_byte_identical(
        ops in proptest::collection::vec((0u8..7, 0u8..12, 0u8..=255u8), 1..40),
        cuts in proptest::collection::vec(0u32..1000, 0..6),
    ) {
        let input = build_stream(&ops);

        let s1 = fresh_store();
        let (expect, _) = serve(&s1, &input, 0);

        let mut points: Vec<usize> = cuts
            .iter()
            .map(|&c| c as usize * input.len() / 1000)
            .collect();
        points.push(input.len());
        points.sort_unstable();

        let run = |plane: DataPlane| {
            let store = Arc::new(fresh_store());
            let clock = LogicalClock::new();
            let mut server = CacheServer::start_full(
                Arc::clone(&store),
                clock,
                "127.0.0.1:0",
                ServerConfig { workers: 1, data_plane: plane, ..ServerConfig::default() },
                None,
                None,
            )
            .unwrap();
            let mut sock = TcpStream::connect(server.addr()).unwrap();
            sock.set_nodelay(true).unwrap();
            sock.set_read_timeout(Some(std::time::Duration::from_secs(10)))
                .unwrap();
            let mut fed = 0usize;
            for &p in &points {
                if p > fed {
                    sock.write_all(&input[fed..p]).unwrap();
                    fed = p;
                }
            }
            let mut got = vec![0u8; expect.len()];
            sock.read_exact(&mut got).expect("server under-delivered");
            drop(sock);
            server.stop();
            (got, store)
        };

        let (got_reactor, store_reactor) = run(DataPlane::Reactor);
        let (got_pool, store_pool) = run(DataPlane::ThreadPool);

        prop_assert_eq!(&got_reactor, &expect, "reactor diverged from serve()");
        prop_assert_eq!(&got_pool, &expect, "thread pool diverged from serve()");
        prop_assert_eq!(&got_reactor, &got_pool, "planes diverged from each other");
        prop_assert_eq!(store_reactor.stats(), store_pool.stats());
        prop_assert_eq!(store_reactor.stats(), s1.stats());
        prop_assert_eq!(store_reactor.len(), s1.len());
        prop_assert_eq!(store_reactor.used_bytes(), s1.used_bytes());
    }
}

/// N concurrent clients hammer the (default: reactor) server with
/// pipelined batches on thread-unique keys; every batch's response must
/// come back complete, in order, with nothing lost or duplicated.
#[test]
fn hammer_pipelined_clients_lose_nothing() {
    hammer(None, DataPlane::default());
}

/// The same hammer against the legacy thread-pool plane.
#[test]
fn hammer_thread_pool_plane_loses_nothing() {
    hammer(None, DataPlane::ThreadPool);
}

/// The same hammer with span tracing enabled on the server: responses
/// stay byte-exact while the tracer fills with server+protocol spans.
#[test]
fn hammer_with_tracing_enabled_stays_byte_exact() {
    let tracer = Tracer::all(1 << 16);
    hammer(Some(Arc::clone(&tracer)), DataPlane::default());
    let cats = tracer.categories();
    assert!(cats.contains(&"protocol"), "{cats:?}");
    assert!(cats.contains(&"server"), "{cats:?}");
    spotcache_obs::export::validate_json(&tracer.chrome_trace_json()).unwrap();
}

fn hammer(tracer: Option<Arc<Tracer>>, data_plane: DataPlane) {
    let store = Arc::new(fresh_store());
    let clock = LogicalClock::new();
    let mut server = CacheServer::start_full(
        store,
        clock,
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            data_plane,
            ..ServerConfig::default()
        },
        None,
        tracer,
    )
    .unwrap();
    let addr = server.addr();

    let threads: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_nodelay(true).unwrap();
                for batch in 0..8 {
                    let mut req = Vec::new();
                    let mut expect = Vec::new();
                    for i in 0..32 {
                        let key = format!("t{t}b{batch}i{i}");
                        req.extend_from_slice(
                            format!("set {key} 0 0 2\r\nxy\r\nget {key}\r\n").as_bytes(),
                        );
                        expect.extend_from_slice(
                            format!("STORED\r\nVALUE {key} 0 2\r\nxy\r\nEND\r\n").as_bytes(),
                        );
                    }
                    s.write_all(&req).unwrap();
                    let mut got = vec![0u8; expect.len()];
                    s.read_exact(&mut got).unwrap();
                    assert!(
                        got == expect,
                        "thread {t} batch {batch}: responses lost, duplicated, or reordered"
                    );
                }
            })
        })
        .collect();
    for th in threads {
        th.join().unwrap();
    }
    server.stop();
    assert_eq!(server.active_connections(), 0);
}
