#![cfg(target_os = "linux")]

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use spotcache_cache::server::{CacheClient, CacheServer, LogicalClock};
use spotcache_cache::store::{Store, StoreConfig};

fn cpu_ticks() -> u64 {
    let stat = std::fs::read_to_string("/proc/self/stat").unwrap();
    let rest = &stat[stat.rfind(')').unwrap() + 2..];
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let utime: u64 = fields[11].parse().unwrap();
    let stime: u64 = fields[12].parse().unwrap();
    utime + stime
}

#[test]
fn half_closed_slow_reader_cpu() {
    let store = Arc::new(Store::new(StoreConfig {
        capacity_bytes: 64 << 20,
        shards: 8,
    }));
    let clock = LogicalClock::new();
    let mut server = CacheServer::start(Arc::clone(&store), clock, "127.0.0.1:0").unwrap();
    let addr = server.addr();

    // Store a large value, then pipeline many gets and half-close.
    let mut c = CacheClient::connect(addr).unwrap();
    let val = vec![b'v'; 16 * 1024];
    c.set("big", &val, 0).unwrap();
    drop(c);

    let mut s = TcpStream::connect(addr).unwrap();
    let req = "get big\r\n".repeat(4000); // ~64 MiB of responses
    s.write_all(req.as_bytes()).unwrap();
    s.shutdown(Shutdown::Write).unwrap();

    // Read slowly: small chunks with sleeps, while measuring server CPU.
    std::thread::sleep(Duration::from_millis(200));
    let t0 = cpu_ticks();
    let start = Instant::now();
    let mut buf = vec![0u8; 4096];
    while start.elapsed() < Duration::from_secs(2) {
        let _ = s.read(&mut buf);
        std::thread::sleep(Duration::from_millis(50));
    }
    let spent = cpu_ticks() - t0;
    eprintln!("CPU ticks burned over 2s with half-closed slow reader: {spent} (~{} ms)", spent * 10);
    server.stop();
    assert!(spent <= 25, "hot spin detected: {spent} ticks (~{} ms CPU)", spent * 10);
}
