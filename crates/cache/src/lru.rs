//! An index-based intrusive doubly-linked LRU list.
//!
//! Nodes live in a slab (`Vec`) and link to each other by index, so the
//! structure needs no `unsafe` and no per-operation allocation once the slab
//! has grown. Each node carries a caller-supplied payload `T` (the store
//! keeps the cache key there so eviction can find the map entry).
//!
//! Slots are reused, so a bare index can dangle across a remove/push pair.
//! Each slot therefore carries a **generation counter**, bumped on every
//! removal: holders of an `(idx, gen)` pair taken while a node was live
//! (the store's deferred touch records and TTL wheel records) can later
//! check [`LruList::is_live_gen`] or use [`LruList::touch_if`] to apply
//! only if the slot still holds the same insertion.

/// Sentinel index meaning "no node".
const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node<T> {
    prev: usize,
    next: usize,
    gen: u32,
    value: Option<T>,
}

/// An LRU list over payloads of type `T`.
///
/// Front = most recently used; back = least recently used.
#[derive(Debug, Clone)]
pub struct LruList<T> {
    nodes: Vec<Node<T>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    len: usize,
}

impl<T> Default for LruList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LruList<T> {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value` at the front (most-recently-used end); returns its
    /// slot index, stable until removal.
    pub fn push_front(&mut self, value: T) -> usize {
        let idx = match self.free.pop() {
            Some(i) => {
                let gen = self.nodes[i].gen;
                self.nodes[i] = Node {
                    prev: NIL,
                    next: self.head,
                    gen,
                    value: Some(value),
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    prev: NIL,
                    next: self.head,
                    gen: 0,
                    value: Some(value),
                });
                self.nodes.len() - 1
            }
        };
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
        self.len += 1;
        idx
    }

    /// Unlinks `idx` from its neighbours without freeing the slot.
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Moves a live node to the front (marks it most recently used).
    ///
    /// # Panics
    ///
    /// Panics if `idx` does not refer to a live node.
    pub fn touch(&mut self, idx: usize) {
        assert!(self.is_live(idx), "touch of dead LRU slot {idx}");
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Moves a live node to the front only if its generation still matches
    /// `gen`; returns whether the touch was applied. This is the batched
    /// touch-flush entry point: a stale record (the slot was removed and
    /// possibly reused since the reader captured it) is dropped silently.
    pub fn touch_if(&mut self, idx: usize, gen: u32) -> bool {
        if !self.is_live_gen(idx, gen) {
            return false;
        }
        self.touch(idx);
        true
    }

    /// Removes a live node, returning its payload.
    ///
    /// # Panics
    ///
    /// Panics if `idx` does not refer to a live node.
    pub fn remove(&mut self, idx: usize) -> T {
        assert!(self.is_live(idx), "remove of dead LRU slot {idx}");
        self.unlink(idx);
        let value = self.nodes[idx].value.take().expect("live node has a value");
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
        self.nodes[idx].gen = self.nodes[idx].gen.wrapping_add(1);
        self.free.push(idx);
        self.len -= 1;
        value
    }

    /// Empties the list while keeping the slab and free-list allocations,
    /// and bumps every removed slot's generation so outstanding
    /// `(idx, gen)` records (touch buffers, wheel entries) can never match
    /// a node inserted after the clear.
    pub fn clear(&mut self) {
        let mut cur = self.head;
        while cur != NIL {
            let node = &mut self.nodes[cur];
            node.value = None;
            node.gen = node.gen.wrapping_add(1);
            let next = node.next;
            node.prev = NIL;
            node.next = NIL;
            self.free.push(cur);
            cur = next;
        }
        self.head = NIL;
        self.tail = NIL;
        self.len = 0;
    }

    /// Removes and returns the least-recently-used payload.
    pub fn pop_back(&mut self) -> Option<T> {
        (self.tail != NIL).then(|| self.remove(self.tail))
    }

    /// The payload at the least-recently-used end.
    pub fn back(&self) -> Option<&T> {
        (self.tail != NIL).then(|| self.nodes[self.tail].value.as_ref().expect("live"))
    }

    /// The payload at the most-recently-used end.
    pub fn front(&self) -> Option<&T> {
        (self.head != NIL).then(|| self.nodes[self.head].value.as_ref().expect("live"))
    }

    /// Whether `idx` refers to a live node.
    pub fn is_live(&self, idx: usize) -> bool {
        idx < self.nodes.len() && self.nodes[idx].value.is_some()
    }

    /// The current generation of slot `idx` (0 for never-used slots).
    pub fn gen_of(&self, idx: usize) -> u32 {
        self.nodes.get(idx).map_or(0, |n| n.gen)
    }

    /// Whether `idx` refers to a live node whose generation is still `gen`.
    pub fn is_live_gen(&self, idx: usize, gen: u32) -> bool {
        idx < self.nodes.len() && self.nodes[idx].gen == gen && self.nodes[idx].value.is_some()
    }

    /// The payload of a live node (`None` for dead or out-of-range slots).
    pub fn payload(&self, idx: usize) -> Option<&T> {
        self.nodes.get(idx).and_then(|n| n.value.as_ref())
    }

    /// Upper bound on slot indices ever handed out (the slab size).
    pub fn slot_capacity(&self) -> usize {
        self.nodes.len()
    }

    /// Iterates payloads from most- to least-recently-used.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        LruIter {
            list: self,
            cur: self.head,
        }
    }
}

struct LruIter<'a, T> {
    list: &'a LruList<T>,
    cur: usize,
}

impl<'a, T> Iterator for LruIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        if self.cur == NIL {
            return None;
        }
        let node = &self.list.nodes[self.cur];
        self.cur = node.next;
        node.value.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    #[test]
    fn push_touch_pop_order() {
        let mut l = LruList::new();
        let a = l.push_front("a");
        let _b = l.push_front("b");
        let _c = l.push_front("c");
        // Order: c b a. Touch a → a c b.
        l.touch(a);
        assert_eq!(l.front(), Some(&"a"));
        assert_eq!(l.pop_back(), Some("b"));
        assert_eq!(l.pop_back(), Some("c"));
        assert_eq!(l.pop_back(), Some("a"));
        assert_eq!(l.pop_back(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn remove_middle_keeps_links() {
        let mut l = LruList::new();
        let _a = l.push_front(1);
        let b = l.push_front(2);
        let _c = l.push_front(3);
        assert_eq!(l.remove(b), 2);
        let order: Vec<i32> = l.iter().copied().collect();
        assert_eq!(order, vec![3, 1]);
    }

    #[test]
    fn slots_are_reused() {
        let mut l = LruList::new();
        let a = l.push_front(1);
        l.remove(a);
        let b = l.push_front(2);
        assert_eq!(a, b, "freed slot should be reused");
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn generations_invalidate_reused_slots() {
        let mut l = LruList::new();
        let a = l.push_front(1);
        let gen0 = l.gen_of(a);
        assert!(l.is_live_gen(a, gen0));
        l.remove(a);
        assert!(!l.is_live_gen(a, gen0), "removal invalidates the gen");
        let b = l.push_front(2);
        assert_eq!(a, b);
        assert_ne!(l.gen_of(b), gen0, "reused slot has a fresh gen");
        assert!(!l.touch_if(b, gen0), "stale touch is dropped");
        assert!(l.touch_if(b, l.gen_of(b)), "current-gen touch applies");
        assert_eq!(l.payload(b), Some(&2));
    }

    #[test]
    fn clear_bumps_generations_and_reuses_slab() {
        let mut l = LruList::new();
        let a = l.push_front("a");
        let b = l.push_front("b");
        let (ga, gb) = (l.gen_of(a), l.gen_of(b));
        l.clear();
        assert!(l.is_empty());
        assert!(l.front().is_none() && l.back().is_none());
        assert!(!l.is_live_gen(a, ga) && !l.is_live_gen(b, gb));
        let c = l.push_front("c");
        assert!(c == a || c == b, "slab slots are reused after clear");
        assert_eq!(l.iter().copied().collect::<Vec<_>>(), vec!["c"]);
    }

    #[test]
    fn touch_front_is_noop() {
        let mut l = LruList::new();
        l.push_front(1);
        let b = l.push_front(2);
        l.touch(b);
        assert_eq!(l.front(), Some(&2));
        assert_eq!(l.back(), Some(&1));
    }

    #[test]
    #[should_panic(expected = "dead LRU slot")]
    fn touch_dead_slot_panics() {
        let mut l = LruList::new();
        let a = l.push_front(1);
        l.remove(a);
        l.touch(a);
    }

    #[test]
    fn single_element_list() {
        let mut l = LruList::new();
        let a = l.push_front(9);
        l.touch(a);
        assert_eq!(l.front(), l.back());
        assert_eq!(l.remove(a), 9);
        assert!(l.front().is_none());
        assert!(l.back().is_none());
    }

    proptest! {
        /// The list behaves exactly like a VecDeque model under random
        /// push/touch/remove/pop sequences.
        #[test]
        fn matches_vecdeque_model(ops in proptest::collection::vec(0u8..4, 1..200)) {
            let mut l: LruList<u64> = LruList::new();
            let mut model: VecDeque<u64> = VecDeque::new(); // front = MRU
            let mut live: Vec<(usize, u64)> = Vec::new();
            let mut next_val = 0u64;
            for op in ops {
                match op {
                    0 => {
                        let idx = l.push_front(next_val);
                        model.push_front(next_val);
                        live.push((idx, next_val));
                        next_val += 1;
                    }
                    1 if !live.is_empty() => {
                        let (idx, v) = live[(next_val as usize) % live.len()];
                        l.touch(idx);
                        let pos = model.iter().position(|&x| x == v).unwrap();
                        model.remove(pos);
                        model.push_front(v);
                    }
                    2 if !live.is_empty() => {
                        let k = (next_val as usize) % live.len();
                        let (idx, v) = live.remove(k);
                        prop_assert_eq!(l.remove(idx), v);
                        let pos = model.iter().position(|&x| x == v).unwrap();
                        model.remove(pos);
                    }
                    3 => {
                        let got = l.pop_back();
                        let want = model.pop_back();
                        prop_assert_eq!(got, want);
                        if let Some(v) = want {
                            live.retain(|&(_, x)| x != v);
                        }
                    }
                    _ => {}
                }
                prop_assert_eq!(l.len(), model.len());
                let order: Vec<u64> = l.iter().copied().collect();
                let want: Vec<u64> = model.iter().copied().collect();
                prop_assert_eq!(order, want);
            }
        }
    }
}
