//! The memcached text protocol: parsing, execution, and response encoding.
//!
//! The paper's system speaks to stock memcached; this module implements
//! the commands the system actually uses (plus the common administrative
//! ones) against a [`Store`], so a node can be driven with real protocol
//! traffic:
//!
//! ```text
//! set <key> <flags> <exptime> <bytes>\r\n<data>\r\n   -> STORED
//! add/replace ...                                     -> STORED | NOT_STORED
//! get <key>*\r\n                                      -> VALUE ... END
//! delete <key>\r\n                                    -> DELETED | NOT_FOUND
//! incr/decr <key> <delta>\r\n                         -> <value> | NOT_FOUND
//! flush_all\r\n                                       -> OK
//! version\r\n                                         -> VERSION ...
//! stats\r\n                                           -> STAT ... END
//! ```
//!
//! Flags are stored with the value (memcached treats them as opaque);
//! expiry uses the store's logical clock.
//!
//! # Data-plane hot path
//!
//! The serving path is built for pipelined batches and buffer reuse:
//!
//! * [`parse_request`] yields a **borrowed** [`Request`] whose keys and
//!   data are slices of the input buffer — no copies, no allocations.
//!   The owned [`Command`] (and [`parse`]) remain for callers that need
//!   to keep a request beyond its buffer.
//! * [`serve_into`] / [`serve_observed_into`] append responses to a
//!   caller-owned `&mut Vec<u8>`, so a connection reuses one output
//!   buffer for its whole lifetime.
//! * Consecutive pipelined `get` commands are executed **as one batch**
//!   through [`Store::get_many_into`], which takes each shard lock once
//!   per batch instead of once per key. Values stay refcounted
//!   [`bytes::Bytes`] until the response writer copies them into the
//!   output buffer.
//! * Response encoding never heap-allocates for hits, misses, `STORED`,
//!   `DELETED`, or error lines: integers are formatted through a stack
//!   buffer and all sentinel lines are static. (`stats` and the rare
//!   arithmetic error paths may allocate; they are off the hot path.)

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use spotcache_obs::{Counter, EventKind, Histogram, Obs, SpanGuard, TraceContext, Tracer};

use crate::store::{SetOutcome, SetPolicy, Store};

/// Opens a span when a tracer is attached; a `None` tracer costs one
/// `match`, a disabled tracer one relaxed atomic load — the hot path's
/// tracing overhead budget.
#[inline]
fn maybe_span<'a>(
    tracer: Option<&'a Tracer>,
    cat: &'static str,
    name: &'static str,
) -> Option<SpanGuard<'a>> {
    tracer.map(|t| t.span(cat, name))
}

/// Maximum key length accepted (memcached's limit).
pub const MAX_KEY_LEN: usize = 250;

/// Exptime values above this are absolute Unix timestamps, not relative
/// TTLs (the memcached text protocol's 30-day cutoff).
pub const EXPTIME_ABSOLUTE_CUTOFF: u64 = 60 * 60 * 24 * 30;

/// A parsed request that owns its keys and data (survives the input
/// buffer). The serving hot path uses the borrowed [`Request`] instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `get`/`gets` over one or more keys.
    Get {
        /// The requested keys.
        keys: Vec<Bytes>,
    },
    /// A storage command (`set`, `add`, `replace`).
    Store {
        /// Which storage semantic.
        verb: StoreVerb,
        /// The key.
        key: Bytes,
        /// Opaque client flags.
        flags: u32,
        /// Expiry in seconds (0 = never).
        exptime: u64,
        /// The value payload.
        data: Bytes,
        /// `noreply` suppression.
        noreply: bool,
    },
    /// `delete <key>`.
    Delete {
        /// The key.
        key: Bytes,
        /// `noreply` suppression.
        noreply: bool,
    },
    /// `incr`/`decr <key> <delta>`.
    Arith {
        /// The key.
        key: Bytes,
        /// Delta magnitude.
        delta: u64,
        /// `true` for incr, `false` for decr.
        increment: bool,
        /// `noreply` suppression.
        noreply: bool,
    },
    /// `flush_all`.
    FlushAll,
    /// `version`.
    Version,
    /// `stats`.
    Stats,
    /// `trace <token>` — cross-process trace propagation. Carries an
    /// encoded [`TraceContext`] that spans opened while serving the rest
    /// of the batch adopt. Produces **no response bytes**, so response
    /// and ack counting (replication shippers, loadgens) are unaffected.
    Trace {
        /// The encoded context token (see [`TraceContext::decode`]).
        token: Bytes,
    },
}

/// Storage command semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreVerb {
    /// Unconditional store.
    Set,
    /// Store only if absent.
    Add,
    /// Store only if present.
    Replace,
}

/// A request parsed without copying: every key and data block is a slice
/// of the input buffer. This is what the pipelined serving loop executes;
/// convert with [`Request::to_command`] when the request must outlive its
/// buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request<'a> {
    /// `get`/`gets`: the raw space-separated key list (already validated;
    /// iterate it with [`request_keys`]).
    Get {
        /// Raw key-list tail of the command line.
        keys: &'a [u8],
    },
    /// A storage command (`set`, `add`, `replace`).
    Store {
        /// Which storage semantic.
        verb: StoreVerb,
        /// The key.
        key: &'a [u8],
        /// Opaque client flags.
        flags: u32,
        /// Expiry in seconds (0 = never).
        exptime: u64,
        /// The value payload.
        data: &'a [u8],
        /// `noreply` suppression.
        noreply: bool,
    },
    /// `delete <key>`.
    Delete {
        /// The key.
        key: &'a [u8],
        /// `noreply` suppression.
        noreply: bool,
    },
    /// `incr`/`decr <key> <delta>`.
    Arith {
        /// The key.
        key: &'a [u8],
        /// Delta magnitude.
        delta: u64,
        /// `true` for incr, `false` for decr.
        increment: bool,
        /// `noreply` suppression.
        noreply: bool,
    },
    /// `flush_all`.
    FlushAll,
    /// `version`.
    Version,
    /// `stats`.
    Stats,
    /// `trace <token>` — cross-process trace propagation (no response).
    Trace {
        /// The encoded context token, borrowed from the input.
        token: &'a [u8],
    },
}

impl Request<'_> {
    /// Deep-copies into an owned [`Command`].
    pub fn to_command(&self) -> Command {
        match *self {
            Request::Get { keys } => Command::Get {
                keys: request_keys(keys).map(Bytes::copy_from_slice).collect(),
            },
            Request::Store {
                verb,
                key,
                flags,
                exptime,
                data,
                noreply,
            } => Command::Store {
                verb,
                key: Bytes::copy_from_slice(key),
                flags,
                exptime,
                data: Bytes::copy_from_slice(data),
                noreply,
            },
            Request::Delete { key, noreply } => Command::Delete {
                key: Bytes::copy_from_slice(key),
                noreply,
            },
            Request::Arith {
                key,
                delta,
                increment,
                noreply,
            } => Command::Arith {
                key: Bytes::copy_from_slice(key),
                delta,
                increment,
                noreply,
            },
            Request::FlushAll => Command::FlushAll,
            Request::Version => Command::Version,
            Request::Stats => Command::Stats,
            Request::Trace { token } => Command::Trace {
                token: Bytes::copy_from_slice(token),
            },
        }
    }
}

/// Iterates the keys of a `get` key-list tail (as produced by
/// [`Request::Get`]), skipping runs of spaces.
pub fn request_keys(raw: &[u8]) -> impl Iterator<Item = &[u8]> + Clone {
    raw.split(|&b| b == b' ').filter(|p| !p.is_empty())
}

/// Parse errors, rendered as memcached `CLIENT_ERROR`/`ERROR` lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The command verb is unknown.
    UnknownCommand,
    /// The line is malformed for its verb.
    BadLine(&'static str),
    /// A key is empty, too long, or contains whitespace/control bytes.
    BadKey,
    /// The input does not yet contain a full request (need more bytes).
    Incomplete,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnknownCommand => write!(f, "ERROR"),
            ParseError::BadLine(m) => write!(f, "CLIENT_ERROR {m}"),
            ParseError::BadKey => write!(f, "CLIENT_ERROR bad key"),
            ParseError::Incomplete => write!(f, "CLIENT_ERROR incomplete request"),
        }
    }
}

fn valid_key(k: &[u8]) -> bool {
    !k.is_empty() && k.len() <= MAX_KEY_LEN && k.iter().all(|&b| b > 32 && b != 127)
}

/// Parses one request from `input` without copying: keys and data in the
/// returned [`Request`] borrow from `input`.
///
/// Returns the request and the number of bytes consumed, or
/// [`ParseError::Incomplete`] when more input is needed — the contract a
/// streaming reader wants.
pub fn parse_request(input: &[u8]) -> Result<(Request<'_>, usize), ParseError> {
    let line_end = find_crlf(input).ok_or(ParseError::Incomplete)?;
    let line = &input[..line_end];
    let mut consumed = line_end + 2;
    let mut parts = line.split(|&b| b == b' ').filter(|p| !p.is_empty());
    let verb = parts.next().ok_or(ParseError::UnknownCommand)?;

    match verb {
        b"get" | b"gets" => {
            // The key list is the raw tail of the line after the verb;
            // iterate it in place rather than collecting.
            let tail_start = (verb.as_ptr() as usize - line.as_ptr() as usize) + verb.len();
            let keys = &line[tail_start..];
            let mut any = false;
            for k in request_keys(keys) {
                if !valid_key(k) {
                    return Err(ParseError::BadKey);
                }
                any = true;
            }
            if !any {
                return Err(ParseError::BadLine("get needs at least one key"));
            }
            Ok((Request::Get { keys }, consumed))
        }
        b"set" | b"add" | b"replace" => {
            let sv = match verb {
                b"set" => StoreVerb::Set,
                b"add" => StoreVerb::Add,
                _ => StoreVerb::Replace,
            };
            let key = parts.next().ok_or(ParseError::BadLine("missing key"))?;
            if !valid_key(key) {
                return Err(ParseError::BadKey);
            }
            let flags = parse_u64(parts.next().ok_or(ParseError::BadLine("missing flags"))?)
                .ok_or(ParseError::BadLine("bad flags"))? as u32;
            let exptime = parse_u64(parts.next().ok_or(ParseError::BadLine("missing exptime"))?)
                .ok_or(ParseError::BadLine("bad exptime"))?;
            let bytes = parse_u64(parts.next().ok_or(ParseError::BadLine("missing bytes"))?)
                .ok_or(ParseError::BadLine("bad byte count"))? as usize;
            let noreply = matches!(parts.next(), Some(b"noreply"));
            // The data block: <bytes> bytes followed by CRLF.
            if input.len() < consumed + bytes + 2 {
                return Err(ParseError::Incomplete);
            }
            let data = &input[consumed..consumed + bytes];
            if &input[consumed + bytes..consumed + bytes + 2] != b"\r\n" {
                return Err(ParseError::BadLine("bad data chunk"));
            }
            consumed += bytes + 2;
            Ok((
                Request::Store {
                    verb: sv,
                    key,
                    flags,
                    exptime,
                    data,
                    noreply,
                },
                consumed,
            ))
        }
        b"delete" => {
            let key = parts.next().ok_or(ParseError::BadLine("missing key"))?;
            if !valid_key(key) {
                return Err(ParseError::BadKey);
            }
            let noreply = matches!(parts.next(), Some(b"noreply"));
            Ok((Request::Delete { key, noreply }, consumed))
        }
        b"incr" | b"decr" => {
            let key = parts.next().ok_or(ParseError::BadLine("missing key"))?;
            if !valid_key(key) {
                return Err(ParseError::BadKey);
            }
            let delta = parse_u64(parts.next().ok_or(ParseError::BadLine("missing delta"))?)
                .ok_or(ParseError::BadLine("bad delta"))?;
            let noreply = matches!(parts.next(), Some(b"noreply"));
            Ok((
                Request::Arith {
                    key,
                    delta,
                    increment: verb == b"incr",
                    noreply,
                },
                consumed,
            ))
        }
        b"flush_all" => Ok((Request::FlushAll, consumed)),
        b"version" => Ok((Request::Version, consumed)),
        b"stats" => Ok((Request::Stats, consumed)),
        b"trace" => {
            let token = parts
                .next()
                .ok_or(ParseError::BadLine("missing trace token"))?;
            Ok((Request::Trace { token }, consumed))
        }
        _ => Err(ParseError::UnknownCommand),
    }
}

/// Parses one request from `input` into an owned [`Command`].
///
/// Returns the command and the number of bytes consumed, or
/// [`ParseError::Incomplete`] when more input is needed.
pub fn parse(input: &[u8]) -> Result<(Command, usize), ParseError> {
    let (req, n) = parse_request(input)?;
    Ok((req.to_command(), n))
}

fn find_crlf(input: &[u8]) -> Option<usize> {
    input.windows(2).position(|w| w == b"\r\n")
}

fn parse_u64(b: &[u8]) -> Option<u64> {
    std::str::from_utf8(b).ok()?.parse().ok()
}

/// Wire format of a stored value: 4-byte big-endian flags then the data.
/// (Flags are opaque to memcached but must round-trip.)
///
/// Public because the replication shipper and the warm-up pump read raw
/// store values and must re-frame them as protocol `set`s (see
/// [`crate::replication`]).
pub fn encode_value(flags: u32, data: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(4 + data.len());
    v.extend_from_slice(&flags.to_be_bytes());
    v.extend_from_slice(data);
    v
}

/// Splits a raw stored value into its client flags and data payload; `None`
/// when the value was stored without the protocol's flag prefix (a direct
/// [`Store`] write).
pub fn decode_value(raw: &[u8]) -> Option<(u32, &[u8])> {
    if raw.len() < 4 {
        return None;
    }
    let flags = u32::from_be_bytes([raw[0], raw[1], raw[2], raw[3]]);
    Some((flags, &raw[4..]))
}

/// Decimal digits of a `u64` rendered into a stack buffer (the response
/// writer's allocation-free integer formatter).
struct U64Digits {
    buf: [u8; 20],
    start: usize,
}

impl U64Digits {
    fn new(mut v: u64) -> Self {
        let mut buf = [0u8; 20];
        let mut i = buf.len();
        loop {
            i -= 1;
            buf[i] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        Self { buf, start: i }
    }

    fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..]
    }
}

fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(U64Digits::new(v).as_slice());
}

/// Appends one `VALUE <key> <flags> <len>\r\n<data>\r\n` block.
fn write_value_line(out: &mut Vec<u8>, key: &[u8], flags: u32, data: &[u8]) {
    out.extend_from_slice(b"VALUE ");
    out.extend_from_slice(key);
    out.push(b' ');
    write_u64(out, flags as u64);
    out.push(b' ');
    write_u64(out, data.len() as u64);
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
}

/// Appends the wire rendering of a parse error (matches the `Display`
/// impl followed by CRLF, without allocating).
fn write_parse_error(out: &mut Vec<u8>, e: &ParseError) {
    match e {
        ParseError::UnknownCommand => out.extend_from_slice(b"ERROR\r\n"),
        ParseError::BadLine(m) => {
            out.extend_from_slice(b"CLIENT_ERROR ");
            out.extend_from_slice(m.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        ParseError::BadKey => out.extend_from_slice(b"CLIENT_ERROR bad key\r\n"),
        ParseError::Incomplete => out.extend_from_slice(b"CLIENT_ERROR incomplete request\r\n"),
    }
}

/// Memcached exptime semantics: 0 never expires, values up to 30 days are
/// relative TTLs, larger values are absolute Unix timestamps (converted
/// against the logical clock; an already-past timestamp yields a zero
/// TTL, i.e. immediately expired).
fn ttl_from_exptime(exptime: u64, now: u64) -> Option<u64> {
    match exptime {
        0 => None,
        e if e > EXPTIME_ABSOLUTE_CUTOFF => Some(e.saturating_sub(now)),
        e => Some(e),
    }
}

/// What an executed command was, for observability recording.
struct OpReport {
    op: &'static str,
    hit: bool,
}

/// Appends one `STAT <name> <value>\r\n` line with an `f64` value.
/// Non-finite values render as `0` so the output stays parseable.
fn write_stat_f64(out: &mut Vec<u8>, name: &str, suffix: &str, v: f64) {
    out.extend_from_slice(b"STAT ");
    out.extend_from_slice(name.as_bytes());
    out.extend_from_slice(suffix.as_bytes());
    out.push(b' ');
    if !v.is_finite() || v == 0.0 {
        // Non-finite renders as 0; `v == 0.0` also catches -0.0, which
        // would otherwise print as "-0".
        out.push(b'0');
    } else {
        out.extend_from_slice(format!("{v}").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
}

/// Appends the obs-registry series as `STAT` lines: counters and gauges
/// verbatim, histograms as `_count`/`_mean`/`_p50`/`_p95`/`_p99`/`_max`
/// summaries. Name-ordered (the registry enumerates deterministically).
fn write_registry_stats(out: &mut Vec<u8>, obs: &Obs) {
    for (name, metric) in obs.registry().metrics() {
        match metric {
            spotcache_obs::Metric::Counter(c) => {
                out.extend_from_slice(b"STAT ");
                out.extend_from_slice(name.as_bytes());
                out.push(b' ');
                write_u64(out, c.get());
                out.extend_from_slice(b"\r\n");
            }
            spotcache_obs::Metric::Gauge(g) => {
                write_stat_f64(out, &name, "", g.get());
            }
            spotcache_obs::Metric::Histogram(h) => {
                out.extend_from_slice(b"STAT ");
                out.extend_from_slice(name.as_bytes());
                out.extend_from_slice(b"_count ");
                write_u64(out, h.count());
                out.extend_from_slice(b"\r\n");
                write_stat_f64(out, &name, "_mean", h.mean());
                write_stat_f64(out, &name, "_p50", h.quantile(0.50));
                write_stat_f64(out, &name, "_p95", h.quantile(0.95));
                write_stat_f64(out, &name, "_p99", h.quantile(0.99));
                write_stat_f64(out, &name, "_max", h.max());
            }
        }
    }
}

/// Executes a single non-`get` request, appending its response to `out`.
/// (`get`s are executed in batches by the serving loop; [`execute_into`]
/// has its own per-key path for the owned API.) `obs` extends the `stats`
/// response with the registry's series.
fn exec_mutation(
    store: &Store,
    req: &Request<'_>,
    now: u64,
    obs: Option<&ProtocolObs>,
    out: &mut Vec<u8>,
) -> OpReport {
    match *req {
        Request::Get { .. } => {
            debug_assert!(false, "gets are executed via the batch path");
            OpReport {
                op: "get",
                hit: false,
            }
        }
        // Context lines are consumed by the serving loop before execution;
        // reaching here (owned-command path) they are a silent no-op.
        Request::Trace { .. } => OpReport {
            op: "other",
            hit: true,
        },
        Request::Store {
            verb,
            key,
            flags,
            exptime,
            data,
            noreply,
        } => {
            let policy = match verb {
                StoreVerb::Set => SetPolicy::Always,
                StoreVerb::Add => SetPolicy::IfAbsent,
                StoreVerb::Replace => SetPolicy::IfPresent,
            };
            // Presence check and insertion happen under one shard lock.
            let outcome = store.set_policy_at(
                Bytes::copy_from_slice(key),
                encode_value(flags, data),
                now,
                ttl_from_exptime(exptime, now),
                policy,
            );
            if !noreply {
                out.extend_from_slice(match outcome {
                    SetOutcome::Stored => b"STORED\r\n".as_ref(),
                    SetOutcome::NotStored => b"NOT_STORED\r\n".as_ref(),
                    // An over-budget item is rejected by the store; surface
                    // that as memcached's SERVER_ERROR.
                    SetOutcome::TooLarge => b"SERVER_ERROR object too large for cache\r\n".as_ref(),
                });
            }
            OpReport {
                op: "store",
                hit: outcome == SetOutcome::Stored,
            }
        }
        Request::Delete { key, noreply } => {
            // TTL-aware: deleting an expired-but-unreaped item purges it
            // but answers NOT_FOUND, like memcached.
            let found = store.delete_at(key, now);
            if !noreply {
                out.extend_from_slice(if found {
                    b"DELETED\r\n".as_ref()
                } else {
                    b"NOT_FOUND\r\n".as_ref()
                });
            }
            OpReport {
                op: "delete",
                hit: found,
            }
        }
        Request::Arith {
            key,
            delta,
            increment,
            noreply,
        } => {
            let mut ok = false;
            match store.get_at(key, now) {
                Some(raw) => {
                    let numeric = decode_value(&raw).and_then(|(f, d)| {
                        std::str::from_utf8(d)
                            .ok()
                            .and_then(|s| s.trim().parse::<u64>().ok())
                            .map(|v| (f, v))
                    });
                    match numeric {
                        Some((flags, value)) => {
                            let newv = if increment {
                                value.wrapping_add(delta)
                            } else {
                                value.saturating_sub(delta)
                            };
                            let digits = U64Digits::new(newv);
                            store.set_at(
                                Bytes::copy_from_slice(key),
                                encode_value(flags, digits.as_slice()),
                                now,
                                None,
                            );
                            if !noreply {
                                out.extend_from_slice(digits.as_slice());
                                out.extend_from_slice(b"\r\n");
                            }
                            ok = true;
                        }
                        None => {
                            if !noreply {
                                out.extend_from_slice(
                                    b"CLIENT_ERROR cannot increment or decrement non-numeric value\r\n",
                                );
                            }
                        }
                    }
                }
                None => {
                    if !noreply {
                        out.extend_from_slice(b"NOT_FOUND\r\n");
                    }
                }
            }
            OpReport {
                op: "arith",
                hit: ok,
            }
        }
        Request::FlushAll => {
            store.clear();
            out.extend_from_slice(b"OK\r\n");
            OpReport {
                op: "other",
                hit: true,
            }
        }
        Request::Version => {
            out.extend_from_slice(b"VERSION spotcache-1.0\r\n");
            OpReport {
                op: "other",
                hit: true,
            }
        }
        Request::Stats => {
            // One sweep over the shard locks for every aggregate field;
            // TTL-aware at `now`, so expired-but-unreaped items don't
            // inflate `curr_items`/`bytes` (and pending touches flush).
            let snap = store.snapshot_at(now);
            for (k, v) in [
                ("get_hits", snap.stats.hits),
                ("get_misses", snap.stats.misses),
                ("evictions", snap.stats.evictions),
                ("cmd_set", snap.stats.sets),
                ("expired_unfetched", snap.stats.expirations),
                ("curr_items", snap.items as u64),
                ("bytes", snap.used_bytes as u64),
            ] {
                out.extend_from_slice(b"STAT ");
                out.extend_from_slice(k.as_bytes());
                out.push(b' ');
                write_u64(out, v);
                out.extend_from_slice(b"\r\n");
            }
            if let Some(po) = obs {
                write_registry_stats(out, po.bundle());
            }
            out.extend_from_slice(b"END\r\n");
            OpReport {
                op: "other",
                hit: true,
            }
        }
    }
}

/// Executes a command against a store at logical time `now`, returning the
/// encoded response (empty for `noreply` commands).
pub fn execute(store: &Store, cmd: &Command, now: u64) -> Vec<u8> {
    let mut out = Vec::new();
    execute_into(store, cmd, now, &mut out);
    out
}

/// [`execute`], appending the response to a caller-owned buffer.
pub fn execute_into(store: &Store, cmd: &Command, now: u64, out: &mut Vec<u8>) {
    match cmd {
        Command::Get { keys } => {
            for key in keys {
                if let Some(raw) = store.get_at(key, now) {
                    if let Some((flags, data)) = decode_value(&raw) {
                        write_value_line(out, key, flags, data);
                    }
                }
            }
            out.extend_from_slice(b"END\r\n");
        }
        Command::Store {
            verb,
            key,
            flags,
            exptime,
            data,
            noreply,
        } => {
            exec_mutation(
                store,
                &Request::Store {
                    verb: *verb,
                    key,
                    flags: *flags,
                    exptime: *exptime,
                    data,
                    noreply: *noreply,
                },
                now,
                None,
                out,
            );
        }
        Command::Delete { key, noreply } => {
            exec_mutation(
                store,
                &Request::Delete {
                    key,
                    noreply: *noreply,
                },
                now,
                None,
                out,
            );
        }
        Command::Arith {
            key,
            delta,
            increment,
            noreply,
        } => {
            exec_mutation(
                store,
                &Request::Arith {
                    key,
                    delta: *delta,
                    increment: *increment,
                    noreply: *noreply,
                },
                now,
                None,
                out,
            );
        }
        Command::FlushAll => {
            exec_mutation(store, &Request::FlushAll, now, None, out);
        }
        Command::Version => {
            exec_mutation(store, &Request::Version, now, None, out);
        }
        Command::Stats => {
            exec_mutation(store, &Request::Stats, now, None, out);
        }
        // Trace context lines produce no response.
        Command::Trace { .. } => {}
    }
}

/// Per-operation recording handles for the protocol layer.
///
/// One instance is shared by every connection of a server (the handles
/// are atomic, so recording needs no lock). Latencies are wall-clock
/// service durations in microseconds; journal timestamps are the caller's
/// logical `now`, keeping event streams replayable.
pub struct ProtocolObs {
    obs: Arc<Obs>,
    tracer: Option<Arc<Tracer>>,
    get: Counter,
    store: Counter,
    delete: Counter,
    arith: Counter,
    other: Counter,
    hits: Counter,
    misses: Counter,
    parse_errors: Counter,
    latency_us: Histogram,
    /// Per-request stage attribution: where inside the data plane a
    /// request's latency went. The protocol layer records parse / shard
    /// lock / execute / serialize; the server layer records the epoll
    /// readiness gap and the read/write syscall stages (hence
    /// `pub(crate)`).
    stage_parse_us: Histogram,
    stage_lock_us: Histogram,
    stage_execute_us: Histogram,
    stage_serialize_us: Histogram,
    pub(crate) stage_ready_us: Histogram,
    pub(crate) stage_read_us: Histogram,
    pub(crate) stage_write_us: Histogram,
}

impl ProtocolObs {
    /// Registers the `cache_*` and `stage_*` series in `obs` and returns
    /// the handles.
    pub fn new(obs: Arc<Obs>) -> Self {
        Self {
            get: obs.counter("cache_get_total"),
            store: obs.counter("cache_store_total"),
            delete: obs.counter("cache_delete_total"),
            arith: obs.counter("cache_arith_total"),
            other: obs.counter("cache_other_total"),
            hits: obs.counter("cache_get_hits_total"),
            misses: obs.counter("cache_get_misses_total"),
            parse_errors: obs.counter("cache_parse_errors_total"),
            latency_us: obs.histogram("cache_op_latency_us"),
            stage_parse_us: obs.histogram("stage_parse_us"),
            stage_lock_us: obs.histogram("stage_lock_us"),
            stage_execute_us: obs.histogram("stage_execute_us"),
            stage_serialize_us: obs.histogram("stage_serialize_us"),
            stage_ready_us: obs.histogram("stage_ready_us"),
            stage_read_us: obs.histogram("stage_read_us"),
            stage_write_us: obs.histogram("stage_write_us"),
            tracer: None,
            obs,
        }
    }

    /// Attaches a span tracer: serving through this handle opens
    /// `protocol.*` spans (parse, batched lookup, serialize, mutations).
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_deref()
    }

    /// The underlying bundle (for snapshotting).
    pub fn bundle(&self) -> &Arc<Obs> {
        &self.obs
    }

    fn record(&self, op: &'static str, hit: bool, now: u64, latency_us: f64) {
        let counter = match op {
            "get" => &self.get,
            "store" => &self.store,
            "delete" => &self.delete,
            "arith" => &self.arith,
            _ => &self.other,
        };
        counter.inc();
        self.latency_us.record(latency_us);
        self.obs.event(
            now,
            EventKind::CacheOp {
                op: op.to_string(),
                hit,
                latency_us,
            },
        );
    }
}

/// Reusable per-thread scratch for the pipelined serving loop: pending
/// `get` key ranges, per-command key counts, and the batched lookup
/// results. Kept thread-local so steady-state serving allocates nothing.
#[derive(Default)]
struct ServeScratch {
    /// `(offset, len)` of each pending get key, relative to the input.
    key_ranges: Vec<(usize, usize)>,
    /// Number of keys per pending `get` command, in order.
    cmd_keys: Vec<usize>,
    /// Per-command hit counts of the last flushed batch.
    cmd_hits: Vec<usize>,
    /// Batched lookup results (input order).
    values: Vec<Option<Bytes>>,
}

thread_local! {
    static SCRATCH: RefCell<ServeScratch> = RefCell::new(ServeScratch::default());
}

/// Flushes the pending pipelined `get` batch: one [`Store::get_many_into`]
/// sweep (each shard lock taken once per batch), then responses appended
/// in command order.
fn flush_gets(
    store: &Store,
    input: &[u8],
    scratch: &mut ServeScratch,
    now: u64,
    obs: Option<&ProtocolObs>,
    tracer: Option<&Tracer>,
    out: &mut Vec<u8>,
) {
    if scratch.cmd_keys.is_empty() {
        return;
    }
    let _batch_span = maybe_span(tracer, "protocol", "get_batch");
    let start = obs.map(|_| Instant::now());
    {
        let _lookup_span = maybe_span(tracer, "protocol", "store_lookup");
        store.get_many_into(
            scratch.key_ranges.iter().map(|&(o, l)| &input[o..o + l]),
            now,
            &mut scratch.values,
        );
    }
    let serialize_start = obs.map(|_| Instant::now());
    if let (Some(po), Some(t0)) = (obs, start) {
        // Batch start to serialize start: the shard-lock stage of the
        // request's latency attribution.
        po.stage_lock_us.record(t0.elapsed().as_secs_f64() * 1e6);
    }
    let serialize_span = maybe_span(tracer, "protocol", "serialize");
    scratch.cmd_hits.clear();
    let mut vi = 0;
    for &nk in &scratch.cmd_keys {
        let mut hits = 0;
        for _ in 0..nk {
            if let Some(raw) = &scratch.values[vi] {
                if let Some((flags, data)) = decode_value(raw) {
                    let (o, l) = scratch.key_ranges[vi];
                    write_value_line(out, &input[o..o + l], flags, data);
                    hits += 1;
                }
            }
            vi += 1;
        }
        out.extend_from_slice(b"END\r\n");
        scratch.cmd_hits.push(hits);
    }
    drop(serialize_span);
    if let (Some(po), Some(t0)) = (obs, serialize_start) {
        po.stage_serialize_us
            .record(t0.elapsed().as_secs_f64() * 1e6);
    }
    if let (Some(po), Some(start)) = (obs, start) {
        // The batch is timed as a unit; each command is attributed an
        // equal share so latency sums stay meaningful.
        let share = start.elapsed().as_secs_f64() * 1e6 / scratch.cmd_keys.len() as f64;
        for (i, &nk) in scratch.cmd_keys.iter().enumerate() {
            let hits = scratch.cmd_hits[i];
            po.hits.add(hits as u64);
            po.misses.add((nk - hits) as u64);
            po.record("get", hits > 0, now, share);
        }
    }
    scratch.key_ranges.clear();
    scratch.cmd_keys.clear();
    scratch.values.clear();
}

/// Decodes and installs a propagated trace context when tracing is live.
/// Returns whether a context was installed (so the caller clears it when
/// the batch ends instead of leaking it to the next connection served by
/// this thread).
#[inline]
fn adopt_trace_context(tracer: Option<&Tracer>, token: &[u8]) -> bool {
    if !tracer.is_some_and(|t| t.is_enabled()) {
        return false;
    }
    match TraceContext::decode(token) {
        Some(ctx) => {
            spotcache_obs::trace::set_thread_context(Some(ctx));
            true
        }
        None => false,
    }
}

fn serve_loop(
    store: &Store,
    input: &[u8],
    now: u64,
    obs: Option<&ProtocolObs>,
    tracer: Option<&Tracer>,
    out: &mut Vec<u8>,
    scratch: &mut ServeScratch,
) -> usize {
    let mut consumed = 0;
    let mut ctx_installed = false;
    // A propagated `trace <token>` prefix must be applied *before* the
    // root span opens: only depth-0 spans consult the ambient context, so
    // adopting it below the root would orphan the whole serve tree.
    while input[consumed..].starts_with(b"trace ") {
        match parse_request(&input[consumed..]) {
            Ok((Request::Trace { token }, n)) => {
                ctx_installed |= adopt_trace_context(tracer, token);
                consumed += n;
            }
            _ => break,
        }
    }
    let _serve_span = maybe_span(tracer, "protocol", "serve");
    while consumed < input.len() {
        let parse_span = maybe_span(tracer, "protocol", "parse");
        let parse_start = obs.map(|_| Instant::now());
        let parsed = parse_request(&input[consumed..]);
        if let (Some(po), Some(t0)) = (obs, parse_start) {
            po.stage_parse_us.record(t0.elapsed().as_secs_f64() * 1e6);
        }
        drop(parse_span);
        match parsed {
            Ok((Request::Trace { token }, n)) => {
                // Mid-batch context line: applies to spans opened from
                // here on. No response bytes, not counted as an op.
                ctx_installed |= adopt_trace_context(tracer, token);
                consumed += n;
            }
            Ok((Request::Get { keys }, n)) => {
                // Defer: consecutive gets execute as one store batch.
                let mut nk = 0;
                for k in request_keys(keys) {
                    let off = k.as_ptr() as usize - input.as_ptr() as usize;
                    scratch.key_ranges.push((off, k.len()));
                    nk += 1;
                }
                scratch.cmd_keys.push(nk);
                consumed += n;
            }
            Ok((req, n)) => {
                flush_gets(store, input, scratch, now, obs, tracer, out);
                let _exec_span = maybe_span(tracer, "protocol", "execute");
                let start = obs.map(|_| Instant::now());
                let report = exec_mutation(store, &req, now, obs, out);
                if let (Some(po), Some(start)) = (obs, start) {
                    let us = start.elapsed().as_secs_f64() * 1e6;
                    po.stage_execute_us.record(us);
                    po.record(report.op, report.hit, now, us);
                }
                consumed += n;
            }
            Err(ParseError::Incomplete) => break,
            Err(e) => {
                flush_gets(store, input, scratch, now, obs, tracer, out);
                if let Some(po) = obs {
                    po.parse_errors.inc();
                }
                write_parse_error(out, &e);
                // Skip the offending line to resynchronize.
                match find_crlf(&input[consumed..]) {
                    Some(end) => consumed += end + 2,
                    None => break,
                }
            }
        }
    }
    flush_gets(store, input, scratch, now, obs, tracer, out);
    if ctx_installed {
        // Worker threads serve many connections; a propagated context
        // must not outlive the batch that carried it.
        spotcache_obs::trace::set_thread_context(None);
    }
    consumed
}

/// Parses and executes everything in `input`, returning the concatenated
/// responses and the bytes consumed — one call of a server's read loop.
pub fn serve(store: &Store, input: &[u8], now: u64) -> (Vec<u8>, usize) {
    let mut out = Vec::new();
    let consumed = serve_into(store, input, now, &mut out);
    (out, consumed)
}

/// [`serve`], appending responses to a caller-owned buffer (the buffer is
/// not cleared, so a connection can keep unflushed output in it).
pub fn serve_into(store: &Store, input: &[u8], now: u64, out: &mut Vec<u8>) -> usize {
    serve_observed_into(store, input, now, None, out)
}

/// [`serve`], recording per-op counters, latency, and `CacheOp` journal
/// events when `obs` is supplied.
pub fn serve_observed(
    store: &Store,
    input: &[u8],
    now: u64,
    obs: Option<&ProtocolObs>,
) -> (Vec<u8>, usize) {
    let mut out = Vec::new();
    let consumed = serve_observed_into(store, input, now, obs, &mut out);
    (out, consumed)
}

/// The full serving entry point: pipelined batch execution into a
/// caller-owned output buffer, with optional observability. Returns the
/// bytes consumed; everything after that is an incomplete trailing
/// command the caller should retain and retry with more input.
pub fn serve_observed_into(
    store: &Store,
    input: &[u8],
    now: u64,
    obs: Option<&ProtocolObs>,
    out: &mut Vec<u8>,
) -> usize {
    let tracer = obs.and_then(|po| po.tracer());
    let mut scratch = SCRATCH.with(|s| std::mem::take(&mut *s.borrow_mut()));
    let consumed = serve_loop(store, input, now, obs, tracer, out, &mut scratch);
    SCRATCH.with(|s| *s.borrow_mut() = scratch);
    consumed
}

/// [`serve_into`] with span tracing but no metric/journal recording: the
/// leanest instrumented path. With `tracer` disabled (or `None`) this is
/// byte-for-byte the [`serve_into`] hot path and performs **zero heap
/// allocations** per op in steady state — `tests/zero_alloc.rs` proves it
/// with a counting allocator. With tracing enabled the wire output is
/// byte-identical; only spans are recorded on the side.
pub fn serve_traced_into(
    store: &Store,
    input: &[u8],
    now: u64,
    tracer: Option<&Tracer>,
    out: &mut Vec<u8>,
) -> usize {
    let mut scratch = SCRATCH.with(|s| std::mem::take(&mut *s.borrow_mut()));
    let consumed = serve_loop(store, input, now, None, tracer, out, &mut scratch);
    SCRATCH.with(|s| *s.borrow_mut() = scratch);
    consumed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> Store {
        Store::with_capacity(1 << 20)
    }

    fn run(s: &Store, req: &str) -> String {
        let (out, consumed) = serve(s, req.as_bytes(), 0);
        assert_eq!(consumed, req.len(), "whole request consumed");
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn set_then_get_roundtrip() {
        let s = store();
        assert_eq!(run(&s, "set foo 42 0 5\r\nhello\r\n"), "STORED\r\n");
        assert_eq!(run(&s, "get foo\r\n"), "VALUE foo 42 5\r\nhello\r\nEND\r\n");
    }

    #[test]
    fn get_multiple_keys_skips_missing() {
        let s = store();
        run(&s, "set a 0 0 1\r\nx\r\n");
        run(&s, "set c 0 0 1\r\ny\r\n");
        let out = run(&s, "get a b c\r\n");
        assert_eq!(out, "VALUE a 0 1\r\nx\r\nVALUE c 0 1\r\ny\r\nEND\r\n");
    }

    #[test]
    fn add_and_replace_semantics() {
        let s = store();
        assert_eq!(run(&s, "replace k 0 0 1\r\na\r\n"), "NOT_STORED\r\n");
        assert_eq!(run(&s, "add k 0 0 1\r\na\r\n"), "STORED\r\n");
        assert_eq!(run(&s, "add k 0 0 1\r\nb\r\n"), "NOT_STORED\r\n");
        assert_eq!(run(&s, "replace k 0 0 1\r\nc\r\n"), "STORED\r\n");
        assert_eq!(run(&s, "get k\r\n"), "VALUE k 0 1\r\nc\r\nEND\r\n");
    }

    #[test]
    fn delete_semantics() {
        let s = store();
        run(&s, "set k 0 0 1\r\nv\r\n");
        assert_eq!(run(&s, "delete k\r\n"), "DELETED\r\n");
        assert_eq!(run(&s, "delete k\r\n"), "NOT_FOUND\r\n");
    }

    #[test]
    fn incr_decr() {
        let s = store();
        run(&s, "set n 7 0 2\r\n10\r\n");
        assert_eq!(run(&s, "incr n 5\r\n"), "15\r\n");
        assert_eq!(run(&s, "decr n 20\r\n"), "0\r\n"); // saturates at 0
        assert_eq!(run(&s, "incr missing 1\r\n"), "NOT_FOUND\r\n");
        run(&s, "set t 0 0 3\r\nabc\r\n");
        assert!(run(&s, "incr t 1\r\n").starts_with("CLIENT_ERROR"));
        // Flags survive arithmetic.
        assert_eq!(run(&s, "get n\r\n"), "VALUE n 7 1\r\n0\r\nEND\r\n");
    }

    #[test]
    fn expiry_via_logical_clock() {
        let s = store();
        let (out, _) = serve(&s, b"set k 0 60 1\r\nv\r\n", 100);
        assert_eq!(out, b"STORED\r\n");
        let (out, _) = serve(&s, b"get k\r\n", 150);
        assert!(String::from_utf8(out).unwrap().starts_with("VALUE"));
        let (out, _) = serve(&s, b"get k\r\n", 161);
        assert_eq!(out, b"END\r\n");
    }

    #[test]
    fn relative_exptime_at_the_cutoff_is_still_relative() {
        // Exactly 30 days (2 592 000 s) is the largest relative TTL.
        let s = store();
        let now = 1_700_000_000; // a plausible "wall clock" logical time
        let req = format!("set k 0 {EXPTIME_ABSOLUTE_CUTOFF} 1\r\nv\r\n");
        let (out, _) = serve(&s, req.as_bytes(), now);
        assert_eq!(out, b"STORED\r\n");
        let (out, _) = serve(&s, b"get k\r\n", now + EXPTIME_ABSOLUTE_CUTOFF - 1);
        assert!(String::from_utf8(out).unwrap().starts_with("VALUE"));
        let (out, _) = serve(&s, b"get k\r\n", now + EXPTIME_ABSOLUTE_CUTOFF);
        assert_eq!(out, b"END\r\n");
    }

    #[test]
    fn absolute_exptime_expires_at_that_timestamp() {
        // Above the cutoff the value is an absolute Unix timestamp, NOT
        // a TTL of 1.7 billion seconds.
        let s = store();
        let now = 1_700_000_000u64;
        let expiry = now + 60;
        let (out, _) = serve(&s, format!("set k 0 {expiry} 1\r\nv\r\n").as_bytes(), now);
        assert_eq!(out, b"STORED\r\n");
        let (out, _) = serve(&s, b"get k\r\n", expiry - 1);
        assert!(String::from_utf8(out).unwrap().starts_with("VALUE"));
        let (out, _) = serve(&s, b"get k\r\n", expiry);
        assert_eq!(out, b"END\r\n");
    }

    #[test]
    fn already_expired_absolute_exptime_never_serves() {
        let s = store();
        let now = 1_700_000_000u64;
        let past = now - 3_600; // still > the 30-day cutoff
        assert!(past > EXPTIME_ABSOLUTE_CUTOFF);
        let (out, _) = serve(&s, format!("set k 0 {past} 1\r\nv\r\n").as_bytes(), now);
        assert_eq!(out, b"STORED\r\n");
        let (out, _) = serve(&s, b"get k\r\n", now);
        assert_eq!(out, b"END\r\n", "item stored in the past must be dead");
    }

    #[test]
    fn observed_serve_counts_ops_hits_and_errors() {
        let s = store();
        let obs = Arc::new(Obs::new());
        let po = ProtocolObs::new(Arc::clone(&obs));
        let input = b"set a 0 0 1\r\nx\r\nget a b\r\ndelete a\r\nbogus\r\n";
        let (_, consumed) = serve_observed(&s, input, 7, Some(&po));
        assert_eq!(consumed, input.len());
        assert_eq!(obs.counter("cache_store_total").get(), 1);
        assert_eq!(obs.counter("cache_get_total").get(), 1);
        assert_eq!(obs.counter("cache_delete_total").get(), 1);
        assert_eq!(obs.counter("cache_get_hits_total").get(), 1);
        assert_eq!(obs.counter("cache_get_misses_total").get(), 1);
        assert_eq!(obs.counter("cache_parse_errors_total").get(), 1);
        assert_eq!(obs.histogram("cache_op_latency_us").count(), 3);
        let events = obs.journal().events();
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.t == 7), "logical timestamps");
        assert!(events
            .iter()
            .all(|e| matches!(e.kind, spotcache_obs::EventKind::CacheOp { .. })));
    }

    #[test]
    fn stats_reports_obs_registry_metrics_and_stays_parseable() {
        let s = store();
        let obs = Arc::new(Obs::new());
        obs.gauge("node_price").set(-0.0); // normalization exercised
        obs.gauge("bad_gauge").set(f64::NAN);
        let po = ProtocolObs::new(Arc::clone(&obs));
        // Drive some traffic so the cache_* series have values.
        serve_observed(&s, b"set a 0 0 1\r\nx\r\nget a\r\nget zz\r\n", 0, Some(&po));
        let (out, _) = serve_observed(&s, b"stats\r\n", 0, Some(&po));
        let text = String::from_utf8(out).unwrap();
        // Every line is `STAT <name> <value>` (value parses as f64) until
        // the END terminator — the memcached stats contract.
        let mut lines = text.split("\r\n").filter(|l| !l.is_empty()).peekable();
        let mut n = 0;
        while let Some(line) = lines.next() {
            if lines.peek().is_none() {
                assert_eq!(line, "END");
                break;
            }
            let mut parts = line.splitn(3, ' ');
            assert_eq!(parts.next(), Some("STAT"), "line {line:?}");
            assert!(parts.next().is_some(), "line {line:?}");
            let value = parts.next().expect("value");
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("unparseable value in {line:?}"));
            n += 1;
        }
        // Store snapshot fields plus registry series.
        assert!(n > 7, "expected registry stats beyond the store's 7 fields");
        assert!(text.contains("STAT cache_get_total 2"));
        assert!(text.contains("STAT cache_get_hits_total 1"));
        assert!(text.contains("STAT cache_op_latency_us_count 3"));
        assert!(text.contains("STAT cache_op_latency_us_p95 "));
        assert!(
            text.contains("STAT node_price 0\r\n"),
            "negative zero normalized"
        );
        assert!(text.contains("STAT bad_gauge 0\r\n"), "NaN rendered as 0");
        // The un-observed path still returns the plain snapshot.
        let plain = run(&s, "stats\r\n");
        assert!(!plain.contains("cache_get_total"));
    }

    #[test]
    fn traced_serve_output_is_byte_identical_and_spans_cover_the_layers() {
        let s = store();
        let s2 = store();
        let tracer = spotcache_obs::Tracer::all(1024);
        let input: &[u8] = b"set a 0 0 1\r\nx\r\nget a\r\nget a missing\r\ndelete a\r\nbogus\r\n";
        let mut traced = Vec::new();
        let mut plain = Vec::new();
        let n1 = serve_traced_into(&s, input, 0, Some(&tracer), &mut traced);
        let n2 = serve_into(&s2, input, 0, &mut plain);
        assert_eq!(n1, n2);
        assert_eq!(traced, plain, "tracing must not perturb wire output");
        let names: std::collections::BTreeSet<&'static str> =
            tracer.spans().iter().map(|r| r.name).collect();
        for expect in [
            "serve",
            "parse",
            "get_batch",
            "store_lookup",
            "serialize",
            "execute",
        ] {
            assert!(names.contains(expect), "missing span {expect:?}: {names:?}");
        }
        assert!(tracer.spans().iter().all(|r| r.cat == "protocol"));
        spotcache_obs::export::validate_json(&tracer.chrome_trace_json()).unwrap();
    }

    #[test]
    fn noreply_suppresses_output() {
        let s = store();
        assert_eq!(run(&s, "set k 0 0 1 noreply\r\nv\r\n"), "");
        assert_eq!(run(&s, "delete k noreply\r\n"), "");
        assert_eq!(run(&s, "delete k noreply\r\n"), "");
    }

    #[test]
    fn flush_version_stats() {
        let s = store();
        run(&s, "set k 0 0 1\r\nv\r\n");
        assert_eq!(run(&s, "flush_all\r\n"), "OK\r\n");
        assert_eq!(run(&s, "get k\r\n"), "END\r\n");
        assert!(run(&s, "version\r\n").starts_with("VERSION"));
        let stats = run(&s, "stats\r\n");
        assert!(stats.contains("STAT cmd_set 1"));
        assert!(stats.ends_with("END\r\n"));
    }

    #[test]
    fn pipelined_commands_in_one_buffer() {
        let s = store();
        let out = run(&s, "set a 0 0 1\r\nx\r\nget a\r\ndelete a\r\n");
        assert_eq!(out, "STORED\r\nVALUE a 0 1\r\nx\r\nEND\r\nDELETED\r\n");
    }

    #[test]
    fn pipelined_get_batch_preserves_command_order() {
        // A run of consecutive gets executes as one store batch but the
        // responses come back in command order, byte-identical to
        // sequential execution.
        let s = store();
        run(&s, "set a 1 0 1\r\nx\r\nset b 2 0 2\r\nyy\r\n");
        let out = run(&s, "get a\r\nget missing\r\nget b a\r\nget b\r\n");
        assert_eq!(
            out,
            "VALUE a 1 1\r\nx\r\nEND\r\nEND\r\nVALUE b 2 2\r\nyy\r\nVALUE a 1 1\r\nx\r\nEND\r\nVALUE b 2 2\r\nyy\r\nEND\r\n"
        );
        // A mutation between gets splits the batch at the right point.
        let out = run(&s, "get a\r\ndelete a\r\nget a\r\n");
        assert_eq!(out, "VALUE a 1 1\r\nx\r\nEND\r\nDELETED\r\nEND\r\n");
    }

    #[test]
    fn serve_into_appends_to_existing_buffer() {
        let s = store();
        run(&s, "set k 0 0 1\r\nv\r\n");
        let mut out = b"unflushed:".to_vec();
        let consumed = serve_into(&s, b"get k\r\n", 0, &mut out);
        assert_eq!(consumed, 7);
        assert_eq!(out, b"unflushed:VALUE k 0 1\r\nv\r\nEND\r\n");
    }

    #[test]
    fn incomplete_input_waits_for_more() {
        let s = store();
        let (out, consumed) = serve(&s, b"set k 0 0 10\r\npart", 0);
        assert!(out.is_empty());
        assert_eq!(consumed, 0);
        let (out, consumed) = serve(&s, b"get k\r\nget ", 0);
        assert_eq!(out, b"END\r\n");
        assert_eq!(consumed, 7);
    }

    #[test]
    fn errors_resynchronize() {
        let s = store();
        let out = run(&s, "bogus\r\nget missing\r\n");
        assert_eq!(out, "ERROR\r\nEND\r\n");
        let out = run(&s, "set onlykey\r\n");
        assert!(out.starts_with("CLIENT_ERROR"));
    }

    #[test]
    fn bad_keys_rejected() {
        let s = store();
        let long = "k".repeat(251);
        assert!(run(&s, &format!("get {long}\r\n")).starts_with("CLIENT_ERROR"));
        assert_eq!(parse(b"get \x01bad\r\n").unwrap_err(), ParseError::BadKey);
    }

    #[test]
    fn data_block_must_end_with_crlf() {
        let s = store();
        // No trailing CRLF after the declared 2 bytes: the command errors
        // and the reader resynchronizes at the next line boundary.
        let (out, consumed) = serve(&s, b"set k 0 0 2\r\nabXX", 0);
        assert!(String::from_utf8(out).unwrap().starts_with("CLIENT_ERROR"));
        assert_eq!(consumed, 13, "resynchronized past the command line");
    }

    #[test]
    fn oversized_object_reports_server_error() {
        let s = Store::with_capacity(128);
        let big = "v".repeat(500);
        let out = run(&s, &format!("set k 0 0 500\r\n{big}\r\n"));
        assert!(out.starts_with("SERVER_ERROR"), "{out}");
    }

    #[test]
    fn borrowed_parse_matches_owned_parse() {
        for req in [
            "get a bb ccc\r\n".to_string(),
            "gets one\r\n".to_string(),
            "set k 42 99 3\r\nxyz\r\n".to_string(),
            "add k 0 0 0 noreply\r\n\r\n".to_string(),
            "replace k 1 2 1\r\nz\r\n".to_string(),
            "delete k noreply\r\n".to_string(),
            "incr k 10\r\n".to_string(),
            "decr k 3 noreply\r\n".to_string(),
            "flush_all\r\n".to_string(),
            "version\r\n".to_string(),
            "stats\r\n".to_string(),
            "trace 0000000000000001-0000000000000002-1\r\n".to_string(),
        ] {
            let (borrowed, n1) = parse_request(req.as_bytes()).unwrap();
            let (owned, n2) = parse(req.as_bytes()).unwrap();
            assert_eq!(n1, n2, "{req:?}");
            assert_eq!(borrowed.to_command(), owned, "{req:?}");
        }
    }

    #[test]
    fn trace_command_is_silent_and_propagates_context() {
        let s = store();
        let tracer = spotcache_obs::Tracer::all(1024);
        let ctx = TraceContext {
            trace_id: 0x1234,
            parent_span: 0x99,
            sampled: true,
        };
        let input = format!("trace {}\r\nset a 0 0 1\r\nx\r\nget a\r\n", ctx.encode());
        let mut out = Vec::new();
        let n = serve_traced_into(&s, input.as_bytes(), 0, Some(&tracer), &mut out);
        assert_eq!(n, input.len(), "trace line fully consumed");
        assert_eq!(out, b"STORED\r\nVALUE a 0 1\r\nx\r\nEND\r\n");
        let spans = tracer.spans();
        assert!(!spans.is_empty());
        assert!(
            spans.iter().all(|r| r.trace_id == 0x1234),
            "all spans join the propagated trace: {spans:?}"
        );
        let root = spans.iter().find(|r| r.name == "serve").unwrap();
        assert_eq!(root.parent_id, 0x99, "root parents onto the remote span");
        assert!(
            spotcache_obs::trace::thread_context().is_none(),
            "context must not leak past the serve call"
        );
    }

    #[test]
    fn trace_mid_batch_and_without_tracer_is_ignored() {
        let s = store();
        // No tracer attached: the line is consumed silently, no context
        // sticks to the thread, responses are unchanged.
        let out = run(
            &s,
            "set a 0 0 1\r\nx\r\ntrace 0000000000000001-0000000000000002-1\r\nget a\r\n",
        );
        assert_eq!(out, "STORED\r\nVALUE a 0 1\r\nx\r\nEND\r\n");
        assert!(spotcache_obs::trace::thread_context().is_none());
        // A garbage token is consumed without erroring out the stream.
        let out = run(&s, "trace not-a-token\r\nget a\r\n");
        assert_eq!(out, "VALUE a 0 1\r\nx\r\nEND\r\n");
    }

    #[test]
    fn unsampled_context_suppresses_serve_spans() {
        let s = store();
        let tracer = spotcache_obs::Tracer::all(1024);
        let ctx = TraceContext {
            trace_id: 7,
            parent_span: 8,
            sampled: false,
        };
        let input = format!("trace {}\r\nget missing\r\n", ctx.encode());
        let mut out = Vec::new();
        serve_traced_into(&s, input.as_bytes(), 0, Some(&tracer), &mut out);
        assert_eq!(out, b"END\r\n");
        assert!(
            tracer.spans().is_empty(),
            "sampled=0 context must veto recording"
        );
    }

    #[test]
    fn observed_serve_populates_stage_histograms() {
        let s = store();
        let obs = Arc::new(Obs::new());
        let po = ProtocolObs::new(Arc::clone(&obs));
        serve_observed(&s, b"set a 0 0 1\r\nx\r\nget a\r\n", 0, Some(&po));
        assert!(obs.histogram("stage_parse_us").count() >= 2);
        assert_eq!(obs.histogram("stage_lock_us").count(), 1);
        assert_eq!(obs.histogram("stage_serialize_us").count(), 1);
        assert_eq!(obs.histogram("stage_execute_us").count(), 1);
        // The server-side stages exist (zero until a server records them).
        assert_eq!(obs.histogram("stage_ready_us").count(), 0);
        assert_eq!(obs.histogram("stage_read_us").count(), 0);
        assert_eq!(obs.histogram("stage_write_us").count(), 0);
    }

    #[test]
    fn write_u64_matches_display() {
        for v in [0u64, 1, 9, 10, 99, 12345, u64::MAX] {
            let mut out = Vec::new();
            write_u64(&mut out, v);
            assert_eq!(String::from_utf8(out).unwrap(), v.to_string());
        }
    }
}
