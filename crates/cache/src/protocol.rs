//! The memcached text protocol: parsing, execution, and response encoding.
//!
//! The paper's system speaks to stock memcached; this module implements
//! the commands the system actually uses (plus the common administrative
//! ones) against a [`Store`], so a node can be driven with real protocol
//! traffic:
//!
//! ```text
//! set <key> <flags> <exptime> <bytes>\r\n<data>\r\n   -> STORED
//! add/replace ...                                     -> STORED | NOT_STORED
//! get <key>*\r\n                                      -> VALUE ... END
//! delete <key>\r\n                                    -> DELETED | NOT_FOUND
//! incr/decr <key> <delta>\r\n                         -> <value> | NOT_FOUND
//! flush_all\r\n                                       -> OK
//! version\r\n                                         -> VERSION ...
//! ```
//!
//! Flags are stored with the value (memcached treats them as opaque);
//! expiry uses the store's logical clock.

use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use spotcache_obs::{Counter, EventKind, Histogram, Obs};

use crate::store::Store;

/// Maximum key length accepted (memcached's limit).
pub const MAX_KEY_LEN: usize = 250;

/// Exptime values above this are absolute Unix timestamps, not relative
/// TTLs (the memcached text protocol's 30-day cutoff).
pub const EXPTIME_ABSOLUTE_CUTOFF: u64 = 60 * 60 * 24 * 30;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `get`/`gets` over one or more keys.
    Get {
        /// The requested keys.
        keys: Vec<Bytes>,
    },
    /// A storage command (`set`, `add`, `replace`).
    Store {
        /// Which storage semantic.
        verb: StoreVerb,
        /// The key.
        key: Bytes,
        /// Opaque client flags.
        flags: u32,
        /// Expiry in seconds (0 = never).
        exptime: u64,
        /// The value payload.
        data: Bytes,
        /// `noreply` suppression.
        noreply: bool,
    },
    /// `delete <key>`.
    Delete {
        /// The key.
        key: Bytes,
        /// `noreply` suppression.
        noreply: bool,
    },
    /// `incr`/`decr <key> <delta>`.
    Arith {
        /// The key.
        key: Bytes,
        /// Delta magnitude.
        delta: u64,
        /// `true` for incr, `false` for decr.
        increment: bool,
        /// `noreply` suppression.
        noreply: bool,
    },
    /// `flush_all`.
    FlushAll,
    /// `version`.
    Version,
    /// `stats`.
    Stats,
}

/// Storage command semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreVerb {
    /// Unconditional store.
    Set,
    /// Store only if absent.
    Add,
    /// Store only if present.
    Replace,
}

/// Parse errors, rendered as memcached `CLIENT_ERROR`/`ERROR` lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The command verb is unknown.
    UnknownCommand,
    /// The line is malformed for its verb.
    BadLine(&'static str),
    /// A key is empty, too long, or contains whitespace/control bytes.
    BadKey,
    /// The input does not yet contain a full request (need more bytes).
    Incomplete,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnknownCommand => write!(f, "ERROR"),
            ParseError::BadLine(m) => write!(f, "CLIENT_ERROR {m}"),
            ParseError::BadKey => write!(f, "CLIENT_ERROR bad key"),
            ParseError::Incomplete => write!(f, "CLIENT_ERROR incomplete request"),
        }
    }
}

fn valid_key(k: &[u8]) -> bool {
    !k.is_empty() && k.len() <= MAX_KEY_LEN && k.iter().all(|&b| b > 32 && b != 127)
}

/// Parses one request from `input`.
///
/// Returns the command and the number of bytes consumed, or
/// [`ParseError::Incomplete`] when more input is needed — the contract a
/// streaming reader wants.
pub fn parse(input: &[u8]) -> Result<(Command, usize), ParseError> {
    let line_end = find_crlf(input).ok_or(ParseError::Incomplete)?;
    let line = &input[..line_end];
    let mut consumed = line_end + 2;
    let mut parts = line.split(|&b| b == b' ').filter(|p| !p.is_empty());
    let verb = parts.next().ok_or(ParseError::UnknownCommand)?;

    match verb {
        b"get" | b"gets" => {
            let keys: Vec<Bytes> = parts.map(Bytes::copy_from_slice).collect();
            if keys.is_empty() {
                return Err(ParseError::BadLine("get needs at least one key"));
            }
            if keys.iter().any(|k| !valid_key(k)) {
                return Err(ParseError::BadKey);
            }
            Ok((Command::Get { keys }, consumed))
        }
        b"set" | b"add" | b"replace" => {
            let sv = match verb {
                b"set" => StoreVerb::Set,
                b"add" => StoreVerb::Add,
                _ => StoreVerb::Replace,
            };
            let key = parts.next().ok_or(ParseError::BadLine("missing key"))?;
            if !valid_key(key) {
                return Err(ParseError::BadKey);
            }
            let flags = parse_u64(parts.next().ok_or(ParseError::BadLine("missing flags"))?)
                .ok_or(ParseError::BadLine("bad flags"))? as u32;
            let exptime = parse_u64(parts.next().ok_or(ParseError::BadLine("missing exptime"))?)
                .ok_or(ParseError::BadLine("bad exptime"))?;
            let bytes = parse_u64(parts.next().ok_or(ParseError::BadLine("missing bytes"))?)
                .ok_or(ParseError::BadLine("bad byte count"))? as usize;
            let noreply = matches!(parts.next(), Some(b"noreply"));
            // The data block: <bytes> bytes followed by CRLF.
            if input.len() < consumed + bytes + 2 {
                return Err(ParseError::Incomplete);
            }
            let data = &input[consumed..consumed + bytes];
            if &input[consumed + bytes..consumed + bytes + 2] != b"\r\n" {
                return Err(ParseError::BadLine("bad data chunk"));
            }
            consumed += bytes + 2;
            Ok((
                Command::Store {
                    verb: sv,
                    key: Bytes::copy_from_slice(key),
                    flags,
                    exptime,
                    data: Bytes::copy_from_slice(data),
                    noreply,
                },
                consumed,
            ))
        }
        b"delete" => {
            let key = parts.next().ok_or(ParseError::BadLine("missing key"))?;
            if !valid_key(key) {
                return Err(ParseError::BadKey);
            }
            let noreply = matches!(parts.next(), Some(b"noreply"));
            Ok((
                Command::Delete {
                    key: Bytes::copy_from_slice(key),
                    noreply,
                },
                consumed,
            ))
        }
        b"incr" | b"decr" => {
            let key = parts.next().ok_or(ParseError::BadLine("missing key"))?;
            if !valid_key(key) {
                return Err(ParseError::BadKey);
            }
            let delta = parse_u64(parts.next().ok_or(ParseError::BadLine("missing delta"))?)
                .ok_or(ParseError::BadLine("bad delta"))?;
            let noreply = matches!(parts.next(), Some(b"noreply"));
            Ok((
                Command::Arith {
                    key: Bytes::copy_from_slice(key),
                    delta,
                    increment: verb == b"incr",
                    noreply,
                },
                consumed,
            ))
        }
        b"flush_all" => Ok((Command::FlushAll, consumed)),
        b"version" => Ok((Command::Version, consumed)),
        b"stats" => Ok((Command::Stats, consumed)),
        _ => Err(ParseError::UnknownCommand),
    }
}

fn find_crlf(input: &[u8]) -> Option<usize> {
    input.windows(2).position(|w| w == b"\r\n")
}

fn parse_u64(b: &[u8]) -> Option<u64> {
    std::str::from_utf8(b).ok()?.parse().ok()
}

/// Wire format of a stored value: 4-byte big-endian flags then the data.
/// (Flags are opaque to memcached but must round-trip.)
fn encode_value(flags: u32, data: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(4 + data.len());
    v.extend_from_slice(&flags.to_be_bytes());
    v.extend_from_slice(data);
    v
}

fn decode_value(raw: &[u8]) -> Option<(u32, &[u8])> {
    if raw.len() < 4 {
        return None;
    }
    let flags = u32::from_be_bytes([raw[0], raw[1], raw[2], raw[3]]);
    Some((flags, &raw[4..]))
}

/// Executes a command against a store at logical time `now`, returning the
/// encoded response (empty for `noreply` commands).
pub fn execute(store: &Store, cmd: &Command, now: u64) -> Vec<u8> {
    match cmd {
        Command::Get { keys } => {
            let mut out = Vec::new();
            for key in keys {
                if let Some(raw) = store.get_at(key, now) {
                    if let Some((flags, data)) = decode_value(&raw) {
                        out.extend_from_slice(b"VALUE ");
                        out.extend_from_slice(key);
                        out.extend_from_slice(format!(" {flags} {}\r\n", data.len()).as_bytes());
                        out.extend_from_slice(data);
                        out.extend_from_slice(b"\r\n");
                    }
                }
            }
            out.extend_from_slice(b"END\r\n");
            out
        }
        Command::Store {
            verb,
            key,
            flags,
            exptime,
            data,
            noreply,
        } => {
            let exists = store.contains(key);
            let store_it = match verb {
                StoreVerb::Set => true,
                StoreVerb::Add => !exists,
                StoreVerb::Replace => exists,
            };
            let reply: &[u8] = if store_it {
                // Memcached exptime semantics: 0 never expires, values up
                // to 30 days are relative TTLs, larger values are absolute
                // Unix timestamps (converted here against the logical
                // clock; an already-past timestamp yields a zero TTL, i.e.
                // immediately expired).
                let ttl = match *exptime {
                    0 => None,
                    e if e > EXPTIME_ABSOLUTE_CUTOFF => Some(e.saturating_sub(now)),
                    e => Some(e),
                };
                store.set_at(key.clone(), encode_value(*flags, data), now, ttl);
                // An over-budget item is silently rejected by the store;
                // surface that as memcached's SERVER_ERROR.
                if store.contains(key) {
                    b"STORED\r\n"
                } else {
                    b"SERVER_ERROR object too large for cache\r\n"
                }
            } else {
                b"NOT_STORED\r\n"
            };
            if *noreply {
                Vec::new()
            } else {
                reply.to_vec()
            }
        }
        Command::Delete { key, noreply } => {
            let reply: &[u8] = if store.delete(key) {
                b"DELETED\r\n"
            } else {
                b"NOT_FOUND\r\n"
            };
            if *noreply {
                Vec::new()
            } else {
                reply.to_vec()
            }
        }
        Command::Arith {
            key,
            delta,
            increment,
            noreply,
        } => {
            let reply = match store.get_at(key, now) {
                Some(raw) => match decode_value(&raw)
                    .and_then(|(f, d)| std::str::from_utf8(d).ok().map(|s| (f, s.to_owned())))
                    .and_then(|(f, s)| s.trim().parse::<u64>().ok().map(|v| (f, v)))
                {
                    Some((flags, value)) => {
                        let newv = if *increment {
                            value.wrapping_add(*delta)
                        } else {
                            value.saturating_sub(*delta)
                        };
                        store.set_at(
                            key.clone(),
                            encode_value(flags, newv.to_string().as_bytes()),
                            now,
                            None,
                        );
                        format!("{newv}\r\n").into_bytes()
                    }
                    None => {
                        b"CLIENT_ERROR cannot increment or decrement non-numeric value\r\n".to_vec()
                    }
                },
                None => b"NOT_FOUND\r\n".to_vec(),
            };
            if *noreply {
                Vec::new()
            } else {
                reply
            }
        }
        Command::FlushAll => {
            store.clear();
            b"OK\r\n".to_vec()
        }
        Command::Version => b"VERSION spotcache-1.0\r\n".to_vec(),
        Command::Stats => {
            let s = store.stats();
            let mut out = String::new();
            for (k, v) in [
                ("get_hits", s.hits),
                ("get_misses", s.misses),
                ("evictions", s.evictions),
                ("cmd_set", s.sets),
                ("expired_unfetched", s.expirations),
                ("curr_items", store.len() as u64),
                ("bytes", store.used_bytes() as u64),
            ] {
                out.push_str(&format!("STAT {k} {v}\r\n"));
            }
            out.push_str("END\r\n");
            out.into_bytes()
        }
    }
}

/// Per-operation recording handles for the protocol layer.
///
/// One instance is shared by every connection of a server (the handles
/// are atomic, so recording needs no lock). Latencies are wall-clock
/// service durations in microseconds; journal timestamps are the caller's
/// logical `now`, keeping event streams replayable.
pub struct ProtocolObs {
    obs: Arc<Obs>,
    get: Counter,
    store: Counter,
    delete: Counter,
    arith: Counter,
    other: Counter,
    hits: Counter,
    misses: Counter,
    parse_errors: Counter,
    latency_us: Histogram,
}

impl ProtocolObs {
    /// Registers the `cache_*` series in `obs` and returns the handles.
    pub fn new(obs: Arc<Obs>) -> Self {
        Self {
            get: obs.counter("cache_get_total"),
            store: obs.counter("cache_store_total"),
            delete: obs.counter("cache_delete_total"),
            arith: obs.counter("cache_arith_total"),
            other: obs.counter("cache_other_total"),
            hits: obs.counter("cache_get_hits_total"),
            misses: obs.counter("cache_get_misses_total"),
            parse_errors: obs.counter("cache_parse_errors_total"),
            latency_us: obs.histogram("cache_op_latency_us"),
            obs,
        }
    }

    /// The underlying bundle (for snapshotting).
    pub fn bundle(&self) -> &Arc<Obs> {
        &self.obs
    }

    fn record(&self, cmd: &Command, response: &[u8], now: u64, latency_us: f64) {
        let (op, counter, hit) = match cmd {
            Command::Get { keys } => {
                let values = response
                    .windows(6)
                    .filter(|w| w == b"VALUE ")
                    .count()
                    .min(keys.len());
                self.hits.add(values as u64);
                self.misses.add((keys.len() - values) as u64);
                ("get", &self.get, values > 0)
            }
            Command::Store { .. } => ("store", &self.store, response.starts_with(b"STORED")),
            Command::Delete { .. } => ("delete", &self.delete, response.starts_with(b"DELETED")),
            Command::Arith { .. } => (
                "arith",
                &self.arith,
                !response.starts_with(b"NOT_FOUND") && !response.starts_with(b"CLIENT_ERROR"),
            ),
            _ => ("other", &self.other, true),
        };
        counter.inc();
        self.latency_us.record(latency_us);
        self.obs.event(
            now,
            EventKind::CacheOp {
                op: op.to_string(),
                hit,
                latency_us,
            },
        );
    }
}

/// Parses and executes everything in `input`, returning the concatenated
/// responses and the bytes consumed — one call of a server's read loop.
pub fn serve(store: &Store, input: &[u8], now: u64) -> (Vec<u8>, usize) {
    serve_observed(store, input, now, None)
}

/// [`serve`], recording per-op counters, latency, and `CacheOp` journal
/// events when `obs` is supplied.
pub fn serve_observed(
    store: &Store,
    input: &[u8],
    now: u64,
    obs: Option<&ProtocolObs>,
) -> (Vec<u8>, usize) {
    let mut out = Vec::new();
    let mut consumed = 0;
    while consumed < input.len() {
        match parse(&input[consumed..]) {
            Ok((cmd, n)) => {
                let start = obs.map(|_| Instant::now());
                let response = execute(store, &cmd, now);
                if let (Some(po), Some(start)) = (obs, start) {
                    let latency_us = start.elapsed().as_secs_f64() * 1e6;
                    po.record(&cmd, &response, now, latency_us);
                }
                out.extend_from_slice(&response);
                consumed += n;
            }
            Err(ParseError::Incomplete) => break,
            Err(e) => {
                if let Some(po) = obs {
                    po.parse_errors.inc();
                }
                out.extend_from_slice(format!("{e}\r\n").as_bytes());
                // Skip the offending line to resynchronize.
                match find_crlf(&input[consumed..]) {
                    Some(end) => consumed += end + 2,
                    None => break,
                }
            }
        }
    }
    (out, consumed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> Store {
        Store::with_capacity(1 << 20)
    }

    fn run(s: &Store, req: &str) -> String {
        let (out, consumed) = serve(s, req.as_bytes(), 0);
        assert_eq!(consumed, req.len(), "whole request consumed");
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn set_then_get_roundtrip() {
        let s = store();
        assert_eq!(run(&s, "set foo 42 0 5\r\nhello\r\n"), "STORED\r\n");
        assert_eq!(run(&s, "get foo\r\n"), "VALUE foo 42 5\r\nhello\r\nEND\r\n");
    }

    #[test]
    fn get_multiple_keys_skips_missing() {
        let s = store();
        run(&s, "set a 0 0 1\r\nx\r\n");
        run(&s, "set c 0 0 1\r\ny\r\n");
        let out = run(&s, "get a b c\r\n");
        assert_eq!(out, "VALUE a 0 1\r\nx\r\nVALUE c 0 1\r\ny\r\nEND\r\n");
    }

    #[test]
    fn add_and_replace_semantics() {
        let s = store();
        assert_eq!(run(&s, "replace k 0 0 1\r\na\r\n"), "NOT_STORED\r\n");
        assert_eq!(run(&s, "add k 0 0 1\r\na\r\n"), "STORED\r\n");
        assert_eq!(run(&s, "add k 0 0 1\r\nb\r\n"), "NOT_STORED\r\n");
        assert_eq!(run(&s, "replace k 0 0 1\r\nc\r\n"), "STORED\r\n");
        assert_eq!(run(&s, "get k\r\n"), "VALUE k 0 1\r\nc\r\nEND\r\n");
    }

    #[test]
    fn delete_semantics() {
        let s = store();
        run(&s, "set k 0 0 1\r\nv\r\n");
        assert_eq!(run(&s, "delete k\r\n"), "DELETED\r\n");
        assert_eq!(run(&s, "delete k\r\n"), "NOT_FOUND\r\n");
    }

    #[test]
    fn incr_decr() {
        let s = store();
        run(&s, "set n 7 0 2\r\n10\r\n");
        assert_eq!(run(&s, "incr n 5\r\n"), "15\r\n");
        assert_eq!(run(&s, "decr n 20\r\n"), "0\r\n"); // saturates at 0
        assert_eq!(run(&s, "incr missing 1\r\n"), "NOT_FOUND\r\n");
        run(&s, "set t 0 0 3\r\nabc\r\n");
        assert!(run(&s, "incr t 1\r\n").starts_with("CLIENT_ERROR"));
        // Flags survive arithmetic.
        assert_eq!(run(&s, "get n\r\n"), "VALUE n 7 1\r\n0\r\nEND\r\n");
    }

    #[test]
    fn expiry_via_logical_clock() {
        let s = store();
        let (out, _) = serve(&s, b"set k 0 60 1\r\nv\r\n", 100);
        assert_eq!(out, b"STORED\r\n");
        let (out, _) = serve(&s, b"get k\r\n", 150);
        assert!(String::from_utf8(out).unwrap().starts_with("VALUE"));
        let (out, _) = serve(&s, b"get k\r\n", 161);
        assert_eq!(out, b"END\r\n");
    }

    #[test]
    fn relative_exptime_at_the_cutoff_is_still_relative() {
        // Exactly 30 days (2 592 000 s) is the largest relative TTL.
        let s = store();
        let now = 1_700_000_000; // a plausible "wall clock" logical time
        let req = format!("set k 0 {EXPTIME_ABSOLUTE_CUTOFF} 1\r\nv\r\n");
        let (out, _) = serve(&s, req.as_bytes(), now);
        assert_eq!(out, b"STORED\r\n");
        let (out, _) = serve(&s, b"get k\r\n", now + EXPTIME_ABSOLUTE_CUTOFF - 1);
        assert!(String::from_utf8(out).unwrap().starts_with("VALUE"));
        let (out, _) = serve(&s, b"get k\r\n", now + EXPTIME_ABSOLUTE_CUTOFF);
        assert_eq!(out, b"END\r\n");
    }

    #[test]
    fn absolute_exptime_expires_at_that_timestamp() {
        // Above the cutoff the value is an absolute Unix timestamp, NOT
        // a TTL of 1.7 billion seconds.
        let s = store();
        let now = 1_700_000_000u64;
        let expiry = now + 60;
        let (out, _) = serve(&s, format!("set k 0 {expiry} 1\r\nv\r\n").as_bytes(), now);
        assert_eq!(out, b"STORED\r\n");
        let (out, _) = serve(&s, b"get k\r\n", expiry - 1);
        assert!(String::from_utf8(out).unwrap().starts_with("VALUE"));
        let (out, _) = serve(&s, b"get k\r\n", expiry);
        assert_eq!(out, b"END\r\n");
    }

    #[test]
    fn already_expired_absolute_exptime_never_serves() {
        let s = store();
        let now = 1_700_000_000u64;
        let past = now - 3_600; // still > the 30-day cutoff
        assert!(past > EXPTIME_ABSOLUTE_CUTOFF);
        let (out, _) = serve(&s, format!("set k 0 {past} 1\r\nv\r\n").as_bytes(), now);
        assert_eq!(out, b"STORED\r\n");
        let (out, _) = serve(&s, b"get k\r\n", now);
        assert_eq!(out, b"END\r\n", "item stored in the past must be dead");
    }

    #[test]
    fn observed_serve_counts_ops_hits_and_errors() {
        let s = store();
        let obs = Arc::new(Obs::new());
        let po = ProtocolObs::new(Arc::clone(&obs));
        let input = b"set a 0 0 1\r\nx\r\nget a b\r\ndelete a\r\nbogus\r\n";
        let (_, consumed) = serve_observed(&s, input, 7, Some(&po));
        assert_eq!(consumed, input.len());
        assert_eq!(obs.counter("cache_store_total").get(), 1);
        assert_eq!(obs.counter("cache_get_total").get(), 1);
        assert_eq!(obs.counter("cache_delete_total").get(), 1);
        assert_eq!(obs.counter("cache_get_hits_total").get(), 1);
        assert_eq!(obs.counter("cache_get_misses_total").get(), 1);
        assert_eq!(obs.counter("cache_parse_errors_total").get(), 1);
        assert_eq!(obs.histogram("cache_op_latency_us").count(), 3);
        let events = obs.journal().events();
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.t == 7), "logical timestamps");
        assert!(events
            .iter()
            .all(|e| matches!(e.kind, spotcache_obs::EventKind::CacheOp { .. })));
    }

    #[test]
    fn noreply_suppresses_output() {
        let s = store();
        assert_eq!(run(&s, "set k 0 0 1 noreply\r\nv\r\n"), "");
        assert_eq!(run(&s, "delete k noreply\r\n"), "");
        assert_eq!(run(&s, "delete k noreply\r\n"), "");
    }

    #[test]
    fn flush_version_stats() {
        let s = store();
        run(&s, "set k 0 0 1\r\nv\r\n");
        assert_eq!(run(&s, "flush_all\r\n"), "OK\r\n");
        assert_eq!(run(&s, "get k\r\n"), "END\r\n");
        assert!(run(&s, "version\r\n").starts_with("VERSION"));
        let stats = run(&s, "stats\r\n");
        assert!(stats.contains("STAT cmd_set 1"));
        assert!(stats.ends_with("END\r\n"));
    }

    #[test]
    fn pipelined_commands_in_one_buffer() {
        let s = store();
        let out = run(&s, "set a 0 0 1\r\nx\r\nget a\r\ndelete a\r\n");
        assert_eq!(out, "STORED\r\nVALUE a 0 1\r\nx\r\nEND\r\nDELETED\r\n");
    }

    #[test]
    fn incomplete_input_waits_for_more() {
        let s = store();
        let (out, consumed) = serve(&s, b"set k 0 0 10\r\npart", 0);
        assert!(out.is_empty());
        assert_eq!(consumed, 0);
        let (out, consumed) = serve(&s, b"get k\r\nget ", 0);
        assert_eq!(out, b"END\r\n");
        assert_eq!(consumed, 7);
    }

    #[test]
    fn errors_resynchronize() {
        let s = store();
        let out = run(&s, "bogus\r\nget missing\r\n");
        assert_eq!(out, "ERROR\r\nEND\r\n");
        let out = run(&s, "set onlykey\r\n");
        assert!(out.starts_with("CLIENT_ERROR"));
    }

    #[test]
    fn bad_keys_rejected() {
        let s = store();
        let long = "k".repeat(251);
        assert!(run(&s, &format!("get {long}\r\n")).starts_with("CLIENT_ERROR"));
        assert_eq!(parse(b"get \x01bad\r\n").unwrap_err(), ParseError::BadKey);
    }

    #[test]
    fn data_block_must_end_with_crlf() {
        let s = store();
        // No trailing CRLF after the declared 2 bytes: the command errors
        // and the reader resynchronizes at the next line boundary.
        let (out, consumed) = serve(&s, b"set k 0 0 2\r\nabXX", 0);
        assert!(String::from_utf8(out).unwrap().starts_with("CLIENT_ERROR"));
        assert_eq!(consumed, 13, "resynchronized past the command line");
    }

    #[test]
    fn oversized_object_reports_server_error() {
        let s = Store::with_capacity(128);
        let big = "v".repeat(500);
        let out = run(&s, &format!("set k 0 0 500\r\n{big}\r\n"));
        assert!(out.starts_with("SERVER_ERROR"), "{out}");
    }
}
