//! A cache *node*: one store sized to a cloud instance's RAM.
//!
//! Nodes are the placement unit of the router and the failure unit of the
//! simulator: revoking a spot instance clears its node.

use crate::store::{Store, StoreConfig};

/// Fraction of an instance's RAM usable for cache items (the rest goes to
/// the OS, memcached's own structures, and connection buffers).
pub const USABLE_RAM_FRACTION: f64 = 0.85;

/// One cache node.
pub struct CacheNode {
    /// Stable node identifier (typically the cloud instance id).
    pub id: u64,
    /// The node's key-value store.
    pub store: Store,
    /// vCPUs backing the node (capacity input for the latency model).
    pub vcpus: f64,
    /// RAM backing the node, GiB.
    pub ram_gb: f64,
}

impl CacheNode {
    /// Creates a node for an instance with the given resources.
    ///
    /// The store budget is [`USABLE_RAM_FRACTION`] of the instance RAM.
    pub fn new(id: u64, vcpus: f64, ram_gb: f64) -> Self {
        let capacity_bytes = (ram_gb * USABLE_RAM_FRACTION * (1u64 << 30) as f64) as usize;
        Self {
            id,
            store: Store::new(StoreConfig {
                capacity_bytes,
                shards: 8,
            }),
            vcpus,
            ram_gb,
        }
    }

    /// Creates a tiny node for tests (exact byte budget, single shard).
    pub fn for_tests(id: u64, capacity_bytes: usize) -> Self {
        Self {
            id,
            store: Store::with_capacity(capacity_bytes),
            vcpus: 1.0,
            ram_gb: 1.0,
        }
    }

    /// Usable cache bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.store.capacity_bytes()
    }

    /// Simulates the node's RAM vanishing (instance revoked/terminated).
    pub fn wipe(&self) {
        self.store.clear();
    }
}

impl std::fmt::Debug for CacheNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheNode")
            .field("id", &self.id)
            .field("vcpus", &self.vcpus)
            .field("ram_gb", &self.ram_gb)
            .field("items", &self.store.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_scales_with_ram() {
        let n = CacheNode::new(1, 2.0, 8.0);
        let expect = (8.0 * USABLE_RAM_FRACTION * (1u64 << 30) as f64) as usize;
        // Per-shard integer division may shave a few bytes.
        assert!(n.capacity_bytes() <= expect);
        assert!(n.capacity_bytes() > expect - 64);
    }

    #[test]
    fn wipe_clears_contents() {
        let n = CacheNode::for_tests(1, 4096);
        n.store.set("k", "v");
        assert_eq!(n.store.len(), 1);
        n.wipe();
        assert!(n.store.is_empty());
    }
}
