//! Lock-free bounded recency-touch rings for the store's deferred read
//! path.
//!
//! Under the shared-lock read plane ([`crate::store`] with
//! `ReadPath::Deferred`), a GET never moves its entry in the LRU list —
//! that would need the shard's write lock. Instead it pushes a fixed-size
//! **touch record** (`(lru_idx, lru_gen)` packed into one `u64`) into a
//! per-worker ring, and the records are drained in batches by whoever next
//! holds the shard's write lock.
//!
//! The ring is a bounded Vyukov-style queue with per-slot sequence
//! numbers. Each data-plane worker thread is assigned its own lane, so in
//! steady state every ring has a single producer (the worker) and a single
//! consumer (the flusher, serialized by the shard write lock) and both
//! sides proceed with one uncontended CAS. The sequence-number protocol
//! additionally keeps the ring safe when lanes are oversubscribed (more
//! threads than lanes hash onto one ring) — records are then interleaved
//! across the colliding producers, which only weakens recency ordering
//! *between* those threads, never within one (the approximation contract).
//!
//! Overflow policy is **drop-oldest**: a full ring discards its oldest
//! pending record to make room for the newest. A dropped touch means a hot
//! key looks slightly colder than it is — strictly a recency approximation,
//! never a correctness issue, and counted in `store_touch_dropped_total`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One recency record: LRU slot index and the slot generation at read
/// time, packed so a ring slot is a single `AtomicU64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TouchRec {
    /// LRU slot index within the shard.
    pub idx: u32,
    /// Slot generation observed by the reader; the flush validates it so a
    /// record can never touch a slot that was freed and reused since.
    pub gen: u32,
}

impl TouchRec {
    #[inline]
    fn pack(self) -> u64 {
        ((self.idx as u64) << 32) | self.gen as u64
    }

    #[inline]
    fn unpack(v: u64) -> Self {
        Self {
            idx: (v >> 32) as u32,
            gen: v as u32,
        }
    }
}

struct Slot {
    seq: AtomicUsize,
    rec: AtomicU64,
}

/// A bounded multi-producer multi-consumer ring of [`TouchRec`]s.
///
/// Sized to a power of two; see the module docs for the producer/consumer
/// roles and the drop-oldest overflow policy.
pub struct TouchRing {
    slots: Box<[Slot]>,
    mask: usize,
    enqueue_pos: AtomicUsize,
    dequeue_pos: AtomicUsize,
}

impl TouchRing {
    /// Creates a ring holding at least `capacity` records (rounded up to a
    /// power of two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Vec<Slot> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                rec: AtomicU64::new(0),
            })
            .collect();
        Self {
            slots: slots.into_boxed_slice(),
            mask: cap - 1,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
        }
    }

    /// Capacity in records.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Approximate number of queued records (racy; exact when quiescent).
    pub fn len(&self) -> usize {
        let tail = self.enqueue_pos.load(Ordering::Relaxed);
        let head = self.dequeue_pos.load(Ordering::Relaxed);
        tail.saturating_sub(head)
    }

    /// Whether the ring is (approximately) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes one record without dropping; `false` when full.
    fn try_push(&self, rec: TouchRec) -> bool {
        let packed = rec.pack();
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        slot.rec.store(packed, Ordering::Relaxed);
                        slot.seq.store(pos + 1, Ordering::Release);
                        return true;
                    }
                    Err(p) => pos = p,
                }
            } else if diff < 0 {
                return false; // full
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Pushes one record, discarding the oldest pending record when the
    /// ring is full. Returns `true` when an old record was dropped to make
    /// room (for the `store_touch_dropped_total` counter).
    pub fn push_drop_oldest(&self, rec: TouchRec) -> bool {
        if self.try_push(rec) {
            return false;
        }
        let mut dropped = false;
        // Keep stealing the oldest slot until the push lands. Bounded: each
        // failed push frees one slot or observes another thread doing so.
        loop {
            if self.pop().is_some() {
                dropped = true;
            }
            if self.try_push(rec) {
                return dropped;
            }
        }
    }

    /// Pops the oldest record; `None` when empty.
    pub fn pop(&self) -> Option<TouchRec> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - (pos + 1) as isize;
            if diff == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let packed = slot.rec.load(Ordering::Relaxed);
                        slot.seq.store(pos + self.mask + 1, Ordering::Release);
                        return Some(TouchRec::unpack(packed));
                    }
                    Err(p) => pos = p,
                }
            } else if diff < 0 {
                return None; // empty
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }
}

/// Returns this thread's lane index in `0..lanes`.
///
/// Every thread gets a stable id from a process-wide counter on first use;
/// data-plane workers therefore land on distinct lanes whenever
/// `lanes >= worker count`, and extra threads (tests, benches, sidecar
/// pools) wrap around and share.
pub fn lane_for_thread(lanes: usize) -> usize {
    use std::cell::Cell;
    static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static THREAD_LANE_ID: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    let id = THREAD_LANE_ID.with(|c| {
        let mut id = c.get();
        if id == usize::MAX {
            id = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            c.set(id);
        }
        id
    });
    id % lanes.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_roundtrip() {
        let r = TouchRing::new(8);
        for i in 0..5u32 {
            assert!(!r.push_drop_oldest(TouchRec { idx: i, gen: i * 7 }));
        }
        assert_eq!(r.len(), 5);
        for i in 0..5u32 {
            assert_eq!(r.pop(), Some(TouchRec { idx: i, gen: i * 7 }));
        }
        assert_eq!(r.pop(), None);
        assert!(r.is_empty());
    }

    #[test]
    fn overflow_drops_oldest() {
        let r = TouchRing::new(4); // exact power of two
        for i in 0..4u32 {
            assert!(!r.push_drop_oldest(TouchRec { idx: i, gen: 0 }));
        }
        assert!(r.push_drop_oldest(TouchRec { idx: 99, gen: 0 }));
        // Record 0 (oldest) was sacrificed; order of the rest preserved.
        let drained: Vec<u32> = std::iter::from_fn(|| r.pop()).map(|t| t.idx).collect();
        assert_eq!(drained, vec![1, 2, 3, 99]);
    }

    #[test]
    fn capacity_rounds_up() {
        assert_eq!(TouchRing::new(0).capacity(), 2);
        assert_eq!(TouchRing::new(3).capacity(), 4);
        assert_eq!(TouchRing::new(1024).capacity(), 1024);
    }

    #[test]
    fn pack_roundtrip_extremes() {
        for rec in [
            TouchRec { idx: 0, gen: 0 },
            TouchRec {
                idx: u32::MAX,
                gen: u32::MAX,
            },
            TouchRec {
                idx: 123,
                gen: u32::MAX - 1,
            },
        ] {
            assert_eq!(TouchRec::unpack(rec.pack()), rec);
        }
    }

    #[test]
    fn lanes_are_stable_per_thread() {
        let a = lane_for_thread(8);
        assert_eq!(a, lane_for_thread(8), "lane must be stable per thread");
        assert_eq!(lane_for_thread(1), 0);
        assert_eq!(
            lane_for_thread(0),
            0,
            "zero lanes clamps instead of div-by-zero"
        );
    }

    #[test]
    fn concurrent_producers_and_consumer_lose_nothing_but_drops() {
        // 4 producers hammer one ring while a consumer drains. Every
        // record that is not dropped must come out exactly once, and
        // per-producer order must be preserved among surviving records.
        let r = Arc::new(TouchRing::new(64));
        let n_per = 20_000u32;
        let producers: Vec<_> = (0..4u32)
            .map(|p| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..n_per {
                        r.push_drop_oldest(TouchRec {
                            idx: (p << 24) | i,
                            gen: p,
                        });
                    }
                })
            })
            .collect();
        let consumer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                let mut got: Vec<TouchRec> = Vec::new();
                loop {
                    match r.pop() {
                        Some(t) => got.push(t),
                        None => {
                            if got.len() as u32 >= 4 * n_per {
                                break;
                            }
                            std::thread::yield_now();
                            // Producers may be done with the ring empty.
                            if Arc::strong_count(&r) == 1 && r.is_empty() {
                                break;
                            }
                        }
                    }
                }
                got
            })
        };
        for p in producers {
            p.join().unwrap();
        }
        drop(r);
        let got = consumer.join().unwrap();
        // Surviving records are unique and in order within each producer.
        let mut last = [None::<u32>; 4];
        for t in &got {
            let p = (t.idx >> 24) as usize;
            let i = t.idx & 0x00ff_ffff;
            assert_eq!(t.gen, p as u32);
            if let Some(prev) = last[p] {
                assert!(i > prev, "per-producer order violated: {i} after {prev}");
            }
            last[p] = Some(i);
        }
    }
}
