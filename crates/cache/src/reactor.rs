//! Readiness-driven I/O primitives: a minimal epoll wrapper plus an
//! eventfd wakeup channel.
//!
//! The data plane's event loops ([`crate::server`]) need exactly three
//! kernel facilities: *tell me which of these sockets are ready*
//! (`epoll_wait`), *change what "ready" means per socket*
//! (`epoll_ctl`), and *let another thread interrupt the wait
//! deterministically* (`eventfd`). This module wraps those three raw
//! syscalls behind a safe API and nothing more — no external crate, per
//! the workspace's offline-shims policy; the `extern "C"` declarations
//! below bind the C library symbols every Linux target already links.
//!
//! Design constraints, in order:
//!
//! * **Zero cost while idle.** A [`Poller::wait`] with a negative timeout
//!   blocks in the kernel until a registered fd becomes ready or a
//!   [`WakeFd`] is poked — an idle event loop consumes no CPU at all,
//!   unlike the spin-then-sleep polling it replaces.
//! * **Deterministic wakeup.** [`WakeFd::wake`] makes the next (or the
//!   current) `epoll_wait` return; it cannot be missed the way a
//!   best-effort "nudge connection" can. Wakes coalesce (an eventfd is a
//!   counter, not a queue), so wake-storms cost one event.
//! * **Level-triggered readiness.** Events repeat while the condition
//!   holds, so a handler that drains *some* input and leaves the rest is
//!   re-notified — the failure mode of edge-triggered loops (stranded
//!   data after a partial drain) cannot happen. The server's interest
//!   rearming ([`Interest`]) keeps the loop quiet instead: a connection
//!   with nothing to write is simply not armed for writability.
//!
//! Everything here is Linux-only (`cfg(target_os = "linux")`); the server
//! falls back to its portable worker-pool data plane elsewhere.

use std::io;
use std::os::unix::io::RawFd;

/// Raw syscall bindings (libc symbols; no external crate).
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    /// The kernel's `struct epoll_event`. On x86-64 the ABI packs it
    /// (4-byte aligned u64); elsewhere it uses natural alignment.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    /// The kernel's `struct epoll_event` (naturally aligned variant).
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: u32, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// What a registered fd should be watched for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Notify when the fd has input to read (or the peer hung up).
    pub readable: bool,
    /// Notify when the fd can accept more output.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest (the state of a freshly adopted connection).
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    fn mask(self) -> u32 {
        let mut m = 0;
        if self.readable {
            // RDHUP rides with read interest only. Arming it
            // unconditionally hot-spins a backpressured half-closed
            // connection: read interest off, socket unwritable, yet the
            // level-triggered RDHUP re-fires on every wait. A write-only
            // registration still learns of aborts via EPOLLHUP/EPOLLERR,
            // which epoll always reports, and sees the orderly half-close
            // as soon as backpressure clears and read interest re-arms.
            m |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if self.writable {
            m |= sys::EPOLLOUT;
        }
        m
    }
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd is readable, hung up, or in error (a read will not block).
    pub readable: bool,
    /// The fd is writable or in error (a write will not block).
    pub writable: bool,
}

/// A reusable batch buffer for [`Poller::wait`] results.
pub struct Events {
    raw: Vec<sys::EpollEvent>,
    len: usize,
}

impl Events {
    /// Creates a buffer receiving at most `capacity` events per wait.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            raw: vec![sys::EpollEvent { events: 0, data: 0 }; capacity],
            len: 0,
        }
    }

    /// Events delivered by the last wait.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the last wait delivered nothing (timeout).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`-th event of the last wait.
    pub fn get(&self, i: usize) -> Option<Event> {
        if i >= self.len {
            return None;
        }
        // Copy out of the (possibly packed) raw struct before reading
        // fields, so no unaligned reference is ever formed.
        let e = self.raw[i];
        let bits = { e.events };
        let token = { e.data };
        Some(Event {
            token,
            readable: bits & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP | sys::EPOLLERR) != 0,
            writable: bits & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0,
        })
    }

    /// Iterates the events of the last wait.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        (0..self.len).filter_map(move |i| self.get(i))
    }
}

/// An epoll instance: register fds with a token + [`Interest`], then
/// block in [`wait`](Self::wait) until something is ready.
///
/// All methods take `&self`: the kernel serializes `epoll_ctl` against
/// `epoll_wait`, so one thread may rearm interest while another waits
/// (the server does not need this — each worker owns its poller — but
/// the wakeup fd *is* written from foreign threads, which is the whole
/// point).
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

// The epoll fd is just an fd; the kernel synchronizes operations on it.
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

impl Poller {
    /// Creates an epoll instance (close-on-exec).
    pub fn new() -> io::Result<Self> {
        let epfd = cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
        Ok(Self { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: interest.mask(),
            data: token,
        };
        cvt(unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes the interest of an already registered fd (a *rearm*).
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Removes `fd` from the poller. Closing an fd removes it implicitly,
    /// but explicit removal keeps the sequencing obvious.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, Interest::READ)
    }

    /// Blocks until at least one registered fd is ready, a [`WakeFd`]
    /// registered on this poller is poked, or `timeout_ms` elapses
    /// (negative = wait forever). Fills `events` and returns the count;
    /// `Interrupted` (signal) is retried internally.
    pub fn wait(&self, events: &mut Events, timeout_ms: i32) -> io::Result<usize> {
        events.len = 0;
        loop {
            let n = unsafe {
                sys::epoll_wait(
                    self.epfd,
                    events.raw.as_mut_ptr(),
                    events.raw.len() as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                events.len = n as usize;
                return Ok(events.len);
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { sys::close(self.epfd) };
    }
}

/// A cross-thread wakeup channel for a [`Poller`]: an eventfd registered
/// read-side on the poller; any thread may [`wake`](Self::wake) it to
/// make the owning loop's `epoll_wait` return.
#[derive(Debug)]
pub struct WakeFd {
    fd: RawFd,
}

unsafe impl Send for WakeFd {}
unsafe impl Sync for WakeFd {}

impl WakeFd {
    /// Creates a nonblocking eventfd.
    pub fn new() -> io::Result<Self> {
        let fd = cvt(unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) })?;
        Ok(Self { fd })
    }

    /// The fd to register on a poller (readable interest).
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Makes the next (or current) wait on the registered poller return.
    /// Wakes coalesce; failure is impossible short of fd closure (a full
    /// counter still leaves the fd readable, which is all we need).
    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe {
            sys::write(self.fd, (&one as *const u64).cast(), 8);
        }
    }

    /// Consumes pending wakes so the fd stops reading as ready. Call once
    /// per delivered wake event, before processing the reasons for it
    /// (shutdown flag, injection queue): a wake arriving *after* the drain
    /// re-readies the fd rather than being lost.
    pub fn drain(&self) {
        let mut buf = 0u64;
        unsafe {
            sys::read(self.fd, (&mut buf as *mut u64).cast(), 8);
        }
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::{Duration, Instant};

    #[test]
    fn wakefd_interrupts_a_blocking_wait() {
        let poller = Poller::new().unwrap();
        let wake = std::sync::Arc::new(WakeFd::new().unwrap());
        poller.add(wake.raw_fd(), 7, Interest::READ).unwrap();
        let w = std::sync::Arc::clone(&wake);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            w.wake();
        });
        let mut events = Events::with_capacity(4);
        let start = Instant::now();
        let n = poller.wait(&mut events, 5_000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events.get(0).unwrap().token, 7);
        assert!(start.elapsed() < Duration::from_secs(2), "wakeup missed");
        wake.drain();
        // Drained: a zero-timeout wait sees nothing.
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
        // Wakes coalesce but never vanish: poke twice, one event.
        wake.wake();
        wake.wake();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 1);
        t.join().unwrap();
    }

    #[test]
    fn socket_readiness_and_rearm() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        let fd = server.as_raw_fd();
        poller.add(fd, 1, Interest::READ).unwrap();

        let mut events = Events::with_capacity(4);
        // Nothing to read yet.
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
        client.write_all(b"hello").unwrap();
        // Level-triggered: the event repeats until the data is drained.
        for _ in 0..2 {
            assert_eq!(poller.wait(&mut events, 1_000).unwrap(), 1);
            let ev = events.get(0).unwrap();
            assert_eq!(ev.token, 1);
            assert!(ev.readable);
        }
        // Rearm for writability only: the pending input stops reporting,
        // and the idle socket reports writable immediately.
        poller
            .modify(
                fd,
                1,
                Interest {
                    readable: false,
                    writable: true,
                },
            )
            .unwrap();
        assert_eq!(poller.wait(&mut events, 1_000).unwrap(), 1);
        let ev = events.get(0).unwrap();
        assert!(ev.writable && !ev.readable);
        // Deregister: silence.
        poller.delete(fd).unwrap();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
        drop(client);
    }

    #[test]
    fn peer_hangup_reports_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 9, Interest::READ).unwrap();
        drop(client);
        let mut events = Events::with_capacity(4);
        assert_eq!(poller.wait(&mut events, 2_000).unwrap(), 1);
        assert!(events.get(0).unwrap().readable, "hangup must wake readers");
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 0, "EOF after hangup");
    }
}
