//! A TCP memcached server over the text-protocol codec.
//!
//! One thread per connection (memcached itself uses a small thread pool;
//! for a cache node serving a simulator or tests, per-connection threads
//! are simpler and plenty). The server shares a [`Store`] — the same store
//! a [`crate::node::CacheNode`] wraps — so a node can be driven over real
//! sockets by any memcached client speaking the text protocol.
//!
//! Time for TTLs comes from a [`Clock`] so tests (and simulations) can use
//! logical time while a production-style deployment uses the wall clock.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;
use spotcache_obs::Obs;

use crate::protocol::{serve_observed, ProtocolObs};
use crate::store::Store;

/// A source of seconds for TTL handling.
pub trait Clock: Send + Sync + 'static {
    /// Current time, seconds.
    fn now(&self) -> u64;
}

/// Wall-clock seconds since the Unix epoch.
#[derive(Debug, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> u64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0)
    }
}

/// A settable logical clock for tests and simulations.
#[derive(Debug, Default)]
pub struct LogicalClock(AtomicU64);

impl LogicalClock {
    /// Creates a clock at time zero.
    pub fn new() -> Arc<Self> {
        Arc::new(Self(AtomicU64::new(0)))
    }

    /// Sets the time.
    pub fn set(&self, t: u64) {
        self.0.store(t, Ordering::SeqCst);
    }
}

impl Clock for Arc<LogicalClock> {
    fn now(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

/// How long the accept loop sleeps between polls of a quiet listener.
const ACCEPT_POLL: std::time::Duration = std::time::Duration::from_millis(2);

/// Whether an accept error is transient (retry) rather than fatal.
///
/// `ECONNABORTED`/reset: the client vanished between SYN and accept.
/// `EMFILE`/`ENFILE` (raw 24/23): fd exhaustion — pressure that clears
/// as connections close, not a reason to kill the server.
fn transient_accept_error(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::TimedOut
    ) || matches!(e.raw_os_error(), Some(23) | Some(24))
}

/// A running cache server.
pub struct CacheServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl CacheServer {
    /// Starts a server for `store` on `addr` (use port 0 for an ephemeral
    /// port; the bound address is available via [`Self::addr`]).
    pub fn start(store: Arc<Store>, clock: impl Clock, addr: &str) -> std::io::Result<CacheServer> {
        Self::start_observed(store, clock, addr, None)
    }

    /// [`start`](Self::start), recording per-op protocol metrics, accept
    /// retries, and connection counts into `obs` when supplied.
    pub fn start_observed(
        store: Arc<Store>,
        clock: impl Clock,
        addr: &str,
        obs: Option<Arc<Obs>>,
    ) -> std::io::Result<CacheServer> {
        let listener = TcpListener::bind(addr)?;
        // Non-blocking accept: the loop can observe shutdown without
        // depending on a wake-up connection, so `stop()` cannot hang.
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let clock = Arc::new(clock);
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let proto_obs = obs
            .as_ref()
            .map(|o| Arc::new(ProtocolObs::new(Arc::clone(o))));
        let conn_counter = obs.as_ref().map(|o| o.counter("server_connections_total"));
        let retry_counter = obs
            .as_ref()
            .map(|o| o.counter("server_accept_transient_errors_total"));

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_conns = Arc::clone(&connections);
        let handle = std::thread::spawn(move || {
            while !accept_shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((s, _)) => {
                        if let Some(c) = &conn_counter {
                            c.inc();
                        }
                        let store = Arc::clone(&store);
                        let clock = Arc::clone(&clock);
                        let conn_shutdown = Arc::clone(&accept_shutdown);
                        let proto_obs = proto_obs.clone();
                        let conn = std::thread::spawn(move || {
                            let _ =
                                handle_connection(s, &store, &*clock, &conn_shutdown, proto_obs);
                        });
                        // Track the handle so stop() can join it; reap
                        // finished ones so the vector stays bounded.
                        let mut conns = accept_conns.lock();
                        conns.retain(|h| !h.is_finished());
                        conns.push(conn);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) if transient_accept_error(&e) => {
                        if let Some(c) = &retry_counter {
                            c.inc();
                        }
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(CacheServer {
            addr: local,
            shutdown,
            accept_handle: Some(handle),
            connections,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown and quiesces: joins the accept loop and every
    /// in-flight connection thread, so no server thread outlives this
    /// call.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Best-effort nudge so a poll-sleeping accept loop and blocked
        // readers notice promptly; failure is fine (the loop polls).
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // After the accept loop exits no new connections appear; drain
        // and join everything it spawned.
        let conns = std::mem::take(&mut *self.connections.lock());
        for h in conns {
            let _ = h.join();
        }
    }
}

impl Drop for CacheServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn handle_connection(
    mut stream: TcpStream,
    store: &Store,
    clock: &dyn Clock,
    shutdown: &AtomicBool,
    obs: Option<Arc<ProtocolObs>>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_millis(200)))?;
    let mut pending: Vec<u8> = Vec::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        match stream.read(&mut buf) {
            Ok(0) => return Ok(()), // client closed
            Ok(n) => {
                pending.extend_from_slice(&buf[..n]);
                let (response, consumed) =
                    serve_observed(store, &pending, clock.now(), obs.as_deref());
                pending.drain(..consumed);
                if !response.is_empty() {
                    stream.write_all(&response)?;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
    }
}

/// A minimal blocking memcached text-protocol client (test/tooling use).
pub struct CacheClient {
    stream: TcpStream,
}

impl CacheClient {
    /// Connects to a server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Stores a value; returns the server's response line.
    pub fn set(&mut self, key: &str, value: &[u8], exptime: u64) -> std::io::Result<String> {
        let mut req = format!("set {key} 0 {exptime} {}\r\n", value.len()).into_bytes();
        req.extend_from_slice(value);
        req.extend_from_slice(b"\r\n");
        self.stream.write_all(&req)?;
        self.read_line()
    }

    /// Fetches a value; `None` on miss.
    pub fn get(&mut self, key: &str) -> std::io::Result<Option<Vec<u8>>> {
        self.stream.write_all(format!("get {key}\r\n").as_bytes())?;
        let header = self.read_line()?;
        if header == "END" {
            return Ok(None);
        }
        // VALUE <key> <flags> <bytes>
        let bytes: usize = header
            .rsplit(' ')
            .next()
            .and_then(|b| b.parse().ok())
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, header.clone()))?;
        let mut data = vec![0u8; bytes + 2]; // data + CRLF
        self.stream.read_exact(&mut data)?;
        data.truncate(bytes);
        let end = self.read_line()?; // END
        debug_assert_eq!(end, "END");
        Ok(Some(data))
    }

    /// Deletes a key; returns the response line.
    pub fn delete(&mut self, key: &str) -> std::io::Result<String> {
        self.stream
            .write_all(format!("delete {key}\r\n").as_bytes())?;
        self.read_line()
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            self.stream.read_exact(&mut byte)?;
            if byte[0] == b'\n' {
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return String::from_utf8(line)
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e));
            }
            line.push(byte[0]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;

    fn start_server() -> (CacheServer, Arc<Store>, Arc<LogicalClock>) {
        let store = Arc::new(Store::new(StoreConfig {
            capacity_bytes: 4 << 20,
            shards: 4,
        }));
        let clock = LogicalClock::new();
        let server =
            CacheServer::start(Arc::clone(&store), Arc::clone(&clock), "127.0.0.1:0").unwrap();
        (server, store, clock)
    }

    #[test]
    fn set_get_delete_over_tcp() {
        let (server, _store, _clock) = start_server();
        let mut client = CacheClient::connect(server.addr()).unwrap();
        assert_eq!(client.set("greeting", b"hello world", 0).unwrap(), "STORED");
        assert_eq!(
            client.get("greeting").unwrap().as_deref(),
            Some(b"hello world".as_ref())
        );
        assert_eq!(client.delete("greeting").unwrap(), "DELETED");
        assert_eq!(client.get("greeting").unwrap(), None);
    }

    #[test]
    fn ttl_follows_the_logical_clock() {
        let (server, _store, clock) = start_server();
        let mut client = CacheClient::connect(server.addr()).unwrap();
        clock.set(1_000);
        client.set("s", b"v", 60).unwrap();
        assert!(client.get("s").unwrap().is_some());
        clock.set(1_061);
        assert_eq!(client.get("s").unwrap(), None);
    }

    #[test]
    fn concurrent_clients_share_the_store() {
        let (server, store, _clock) = start_server();
        let addr = server.addr();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut c = CacheClient::connect(addr).unwrap();
                    for i in 0..50 {
                        let key = format!("k{t}-{i}");
                        assert_eq!(c.set(&key, b"x", 0).unwrap(), "STORED");
                        assert!(c.get(&key).unwrap().is_some());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(store.len(), 200);
    }

    #[test]
    fn server_store_is_shared_with_direct_access() {
        // A CacheNode-style owner can read what clients wrote and vice
        // versa (the warm-up pump uses exactly this path).
        let (server, store, _clock) = start_server();
        let mut client = CacheClient::connect(server.addr()).unwrap();
        client.set("from-client", b"1", 0).unwrap();
        assert!(store.get(b"from-client").is_some());
        // Note: direct store writes bypass the protocol's flag prefix, so
        // protocol reads of such keys are served but decode as empty — the
        // pump therefore always writes through `serve`/`execute`.
    }

    #[test]
    fn stop_terminates_accept_loop() {
        let (mut server, _store, _clock) = start_server();
        let addr = server.addr();
        server.stop();
        // Subsequent connections are refused or immediately closed.
        if let Ok(mut c) = CacheClient::connect(addr) {
            let r = c.set("x", b"y", 0);
            assert!(r.is_err() || TcpStream::connect(addr).is_err() || r.is_ok());
        }
    }

    #[test]
    fn stop_joins_in_flight_connection_threads() {
        let (mut server, _store, _clock) = start_server();
        // Open several connections and leave them idle (their threads sit
        // in the read-timeout loop).
        let clients: Vec<_> = (0..3)
            .map(|_| CacheClient::connect(server.addr()).unwrap())
            .collect();
        // Give the accept loop a moment to register them all.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while server.connections.lock().len() < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(server.connections.lock().len(), 3);
        server.stop();
        // Quiesced: every tracked connection thread has been joined.
        assert!(server.connections.lock().is_empty());
        drop(clients);
    }

    #[test]
    fn finished_connections_are_reaped_while_running() {
        let (mut server, _store, _clock) = start_server();
        for _ in 0..5 {
            // Connect and immediately disconnect; the handler exits.
            drop(CacheClient::connect(server.addr()).unwrap());
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
        // One more connection triggers a reap pass in the accept loop.
        let _keep = CacheClient::connect(server.addr()).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let n = server.connections.lock().len();
            if n <= 2 || std::time::Instant::now() > deadline {
                assert!(n <= 2, "finished handles not reaped: {n} tracked");
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        server.stop();
    }

    #[test]
    fn stop_is_idempotent_and_drop_safe() {
        let (mut server, _store, _clock) = start_server();
        server.stop();
        server.stop(); // second stop must not hang or panic
    }

    #[test]
    fn observed_server_records_ops_and_connections() {
        let store = Arc::new(Store::new(StoreConfig {
            capacity_bytes: 4 << 20,
            shards: 4,
        }));
        let clock = LogicalClock::new();
        clock.set(42);
        let obs = Arc::new(Obs::new());
        let mut server = CacheServer::start_observed(
            Arc::clone(&store),
            Arc::clone(&clock),
            "127.0.0.1:0",
            Some(Arc::clone(&obs)),
        )
        .unwrap();
        let mut client = CacheClient::connect(server.addr()).unwrap();
        client.set("k", b"v", 0).unwrap();
        assert!(client.get("k").unwrap().is_some());
        assert!(client.get("missing").unwrap().is_none());
        server.stop();
        assert_eq!(obs.counter("server_connections_total").get(), 1);
        assert_eq!(obs.counter("cache_store_total").get(), 1);
        assert_eq!(obs.counter("cache_get_total").get(), 2);
        assert_eq!(obs.counter("cache_get_hits_total").get(), 1);
        assert_eq!(obs.counter("cache_get_misses_total").get(), 1);
        assert!(obs.histogram("cache_op_latency_us").count() >= 3);
        // Journal timestamps come from the logical clock, not wall time.
        assert!(obs.journal().events().iter().all(|e| e.t == 42));
    }
}
