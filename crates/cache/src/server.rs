//! A TCP memcached server over the text-protocol codec.
//!
//! One thread per connection (memcached itself uses a small thread pool;
//! for a cache node serving a simulator or tests, per-connection threads
//! are simpler and plenty). The server shares a [`Store`] — the same store
//! a [`crate::node::CacheNode`] wraps — so a node can be driven over real
//! sockets by any memcached client speaking the text protocol.
//!
//! Time for TTLs comes from a [`Clock`] so tests (and simulations) can use
//! logical time while a production-style deployment uses the wall clock.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::protocol::serve;
use crate::store::Store;

/// A source of seconds for TTL handling.
pub trait Clock: Send + Sync + 'static {
    /// Current time, seconds.
    fn now(&self) -> u64;
}

/// Wall-clock seconds since the Unix epoch.
#[derive(Debug, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> u64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0)
    }
}

/// A settable logical clock for tests and simulations.
#[derive(Debug, Default)]
pub struct LogicalClock(AtomicU64);

impl LogicalClock {
    /// Creates a clock at time zero.
    pub fn new() -> Arc<Self> {
        Arc::new(Self(AtomicU64::new(0)))
    }

    /// Sets the time.
    pub fn set(&self, t: u64) {
        self.0.store(t, Ordering::SeqCst);
    }
}

impl Clock for Arc<LogicalClock> {
    fn now(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

/// A running cache server.
pub struct CacheServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
}

impl CacheServer {
    /// Starts a server for `store` on `addr` (use port 0 for an ephemeral
    /// port; the bound address is available via [`Self::addr`]).
    pub fn start(store: Arc<Store>, clock: impl Clock, addr: &str) -> std::io::Result<CacheServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let clock = Arc::new(clock);
        let accept_shutdown = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || {
            // A short accept timeout lets the loop observe shutdown.
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(s) => {
                        let store = Arc::clone(&store);
                        let clock = Arc::clone(&clock);
                        let conn_shutdown = Arc::clone(&accept_shutdown);
                        std::thread::spawn(move || {
                            let _ = handle_connection(s, &store, &*clock, &conn_shutdown);
                        });
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(CacheServer {
            addr: local,
            shutdown,
            accept_handle: Some(handle),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown and unblocks the accept loop.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Nudge the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for CacheServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn handle_connection(
    mut stream: TcpStream,
    store: &Store,
    clock: &dyn Clock,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_millis(200)))?;
    let mut pending: Vec<u8> = Vec::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        match stream.read(&mut buf) {
            Ok(0) => return Ok(()), // client closed
            Ok(n) => {
                pending.extend_from_slice(&buf[..n]);
                let (response, consumed) = serve(store, &pending, clock.now());
                pending.drain(..consumed);
                if !response.is_empty() {
                    stream.write_all(&response)?;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
    }
}

/// A minimal blocking memcached text-protocol client (test/tooling use).
pub struct CacheClient {
    stream: TcpStream,
}

impl CacheClient {
    /// Connects to a server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Stores a value; returns the server's response line.
    pub fn set(&mut self, key: &str, value: &[u8], exptime: u64) -> std::io::Result<String> {
        let mut req = format!("set {key} 0 {exptime} {}\r\n", value.len()).into_bytes();
        req.extend_from_slice(value);
        req.extend_from_slice(b"\r\n");
        self.stream.write_all(&req)?;
        self.read_line()
    }

    /// Fetches a value; `None` on miss.
    pub fn get(&mut self, key: &str) -> std::io::Result<Option<Vec<u8>>> {
        self.stream.write_all(format!("get {key}\r\n").as_bytes())?;
        let header = self.read_line()?;
        if header == "END" {
            return Ok(None);
        }
        // VALUE <key> <flags> <bytes>
        let bytes: usize = header
            .rsplit(' ')
            .next()
            .and_then(|b| b.parse().ok())
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, header.clone()))?;
        let mut data = vec![0u8; bytes + 2]; // data + CRLF
        self.stream.read_exact(&mut data)?;
        data.truncate(bytes);
        let end = self.read_line()?; // END
        debug_assert_eq!(end, "END");
        Ok(Some(data))
    }

    /// Deletes a key; returns the response line.
    pub fn delete(&mut self, key: &str) -> std::io::Result<String> {
        self.stream
            .write_all(format!("delete {key}\r\n").as_bytes())?;
        self.read_line()
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            self.stream.read_exact(&mut byte)?;
            if byte[0] == b'\n' {
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return String::from_utf8(line)
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e));
            }
            line.push(byte[0]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;

    fn start_server() -> (CacheServer, Arc<Store>, Arc<LogicalClock>) {
        let store = Arc::new(Store::new(StoreConfig {
            capacity_bytes: 4 << 20,
            shards: 4,
        }));
        let clock = LogicalClock::new();
        let server =
            CacheServer::start(Arc::clone(&store), Arc::clone(&clock), "127.0.0.1:0").unwrap();
        (server, store, clock)
    }

    #[test]
    fn set_get_delete_over_tcp() {
        let (server, _store, _clock) = start_server();
        let mut client = CacheClient::connect(server.addr()).unwrap();
        assert_eq!(client.set("greeting", b"hello world", 0).unwrap(), "STORED");
        assert_eq!(
            client.get("greeting").unwrap().as_deref(),
            Some(b"hello world".as_ref())
        );
        assert_eq!(client.delete("greeting").unwrap(), "DELETED");
        assert_eq!(client.get("greeting").unwrap(), None);
    }

    #[test]
    fn ttl_follows_the_logical_clock() {
        let (server, _store, clock) = start_server();
        let mut client = CacheClient::connect(server.addr()).unwrap();
        clock.set(1_000);
        client.set("s", b"v", 60).unwrap();
        assert!(client.get("s").unwrap().is_some());
        clock.set(1_061);
        assert_eq!(client.get("s").unwrap(), None);
    }

    #[test]
    fn concurrent_clients_share_the_store() {
        let (server, store, _clock) = start_server();
        let addr = server.addr();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut c = CacheClient::connect(addr).unwrap();
                    for i in 0..50 {
                        let key = format!("k{t}-{i}");
                        assert_eq!(c.set(&key, b"x", 0).unwrap(), "STORED");
                        assert!(c.get(&key).unwrap().is_some());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(store.len(), 200);
    }

    #[test]
    fn server_store_is_shared_with_direct_access() {
        // A CacheNode-style owner can read what clients wrote and vice
        // versa (the warm-up pump uses exactly this path).
        let (server, store, _clock) = start_server();
        let mut client = CacheClient::connect(server.addr()).unwrap();
        client.set("from-client", b"1", 0).unwrap();
        assert!(store.get(b"from-client").is_some());
        // Note: direct store writes bypass the protocol's flag prefix, so
        // protocol reads of such keys are served but decode as empty — the
        // pump therefore always writes through `serve`/`execute`.
    }

    #[test]
    fn stop_terminates_accept_loop() {
        let (mut server, _store, _clock) = start_server();
        let addr = server.addr();
        server.stop();
        // Subsequent connections are refused or immediately closed.
        if let Ok(mut c) = CacheClient::connect(addr) {
            let r = c.set("x", b"y", 0);
            assert!(r.is_err() || TcpStream::connect(addr).is_err() || r.is_ok());
        }
    }
}
