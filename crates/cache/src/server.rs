//! A TCP memcached server over the text-protocol codec.
//!
//! The data plane is a **readiness-driven reactor** (the default on
//! Linux): each worker owns an epoll instance ([`crate::reactor`]) and a
//! shard of the connections, blocks in `epoll_wait` until a socket is
//! actually readable or writable, and rearms per-connection interest to
//! follow its backpressure state — an idle connection costs zero CPU, and
//! ten thousand idle connections cost the same. The accept loop blocks in
//! its own poller rather than sleeping between polls, and every event
//! loop carries an eventfd wakeup so `stop()` and new-connection handoff
//! are deterministic instead of poll-sleep races.
//!
//! The previous fixed-size spin-then-sleep worker pool survives as
//! [`DataPlane::ThreadPool`]: it is the portable fallback off Linux and
//! the reference implementation the reactor is property-tested against
//! (`tests/pipeline.rs` proves the two return byte-identical responses).
//!
//! Connection handling is shared by both planes: every connection keeps
//! one input and one output buffer for its whole lifetime; responses are
//! appended by [`crate::protocol::serve_observed_into`] so pipelined
//! batches execute as a unit. Both buffers are bounded: a reader that
//! stops draining its responses stops being read from (backpressure), a
//! writer that streams an endless unparseable "command" is disconnected,
//! and a buffer that ballooned under backpressure releases its capacity
//! once drained (slow readers cannot pin memory forever).
//!
//! The server shares a [`Store`] — the same store a
//! [`crate::node::CacheNode`] wraps — so a node can be driven over real
//! sockets by any memcached client speaking the text protocol.
//!
//! Time for TTLs comes from a [`Clock`] so tests (and simulations) can use
//! logical time while a production-style deployment uses the wall clock.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

#[cfg(target_os = "linux")]
use std::os::unix::io::AsRawFd;

use spotcache_obs::http::standard_routes;
use spotcache_obs::{trace, AdminServer, Counter, Obs, TraceContext, Tracer};

#[cfg(target_os = "linux")]
use crate::reactor::{Events, Interest, Poller, WakeFd};

use crate::protocol::{serve_observed_into, serve_traced_into, ProtocolObs};
use crate::store::Store;

/// A source of seconds for TTL handling.
pub trait Clock: Send + Sync + 'static {
    /// Current time, seconds.
    fn now(&self) -> u64;
}

/// Wall-clock seconds since the Unix epoch.
#[derive(Debug, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> u64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0)
    }
}

/// A settable logical clock for tests and simulations.
#[derive(Debug, Default)]
pub struct LogicalClock(AtomicU64);

impl LogicalClock {
    /// Creates a clock at time zero.
    pub fn new() -> Arc<Self> {
        Arc::new(Self(AtomicU64::new(0)))
    }

    /// Sets the time.
    pub fn set(&self, t: u64) {
        self.0.store(t, Ordering::SeqCst);
    }
}

impl Clock for Arc<LogicalClock> {
    fn now(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

/// How long the fallback accept loop sleeps between polls of a quiet
/// listener (non-Linux only; the reactor accept loop blocks instead).
#[cfg(not(target_os = "linux"))]
const ACCEPT_POLL: std::time::Duration = std::time::Duration::from_millis(2);

/// Consecutive idle passes a thread-pool worker spin-yields before it
/// starts sleeping. Under load the worker never leaves spin mode, so
/// active connections see microsecond-scale polling latency.
const IDLE_SPINS: u32 = 64;

/// How long an idle thread-pool worker sleeps between polls once past
/// [`IDLE_SPINS`].
const IDLE_SLEEP: std::time::Duration = std::time::Duration::from_micros(500);

/// Once this many flushed bytes accumulate at the front of a connection's
/// output buffer, compact it (amortizes the memmove over large writes).
const OUT_COMPACT_THRESHOLD: usize = 64 * 1024;

/// Capacity a connection buffer may keep after draining completely.
/// A burst (or a slow reader hitting its backpressure cap) can balloon a
/// buffer to megabytes; once the bytes are gone, capacity beyond this is
/// released so idle connections cannot pin burst-sized allocations.
const BUF_RETAIN_MAX: usize = 64 * 1024;

/// Reactor token reserved for the per-worker wakeup eventfd.
#[cfg(target_os = "linux")]
const WAKE_TOKEN: u64 = u64::MAX;

/// Events drained per `epoll_wait` in a reactor worker.
#[cfg(target_os = "linux")]
const EVENT_BATCH: usize = 1024;

/// Which serving backend multiplexes connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataPlane {
    /// Readiness-driven epoll reactor (Linux; the default there). Idle
    /// connections cost zero CPU; shutdown and handoff are wakeup-driven.
    Reactor,
    /// Fixed-size worker pool polling nonblocking sockets with a
    /// spin-then-sleep idle strategy. Portable; kept as the reference
    /// implementation the reactor is property-tested against.
    ThreadPool,
}

impl Default for DataPlane {
    fn default() -> Self {
        if cfg!(target_os = "linux") {
            DataPlane::Reactor
        } else {
            DataPlane::ThreadPool
        }
    }
}

/// Tuning knobs for the server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker event loops. `0` (the default) auto-sizes to the machine:
    /// `available_parallelism`, clamped above by the store's shard count
    /// (more workers than shards only adds lock contention, never
    /// parallelism — see [`ServerConfig::effective_workers_for`]).
    /// Nonzero values are taken literally.
    pub workers: usize,
    /// Bytes read from a socket per `read` call.
    pub read_chunk: usize,
    /// Cap on buffered unparsed input per connection; a connection that
    /// exceeds it without ever completing a command is disconnected
    /// (protocol abuse guard).
    pub max_pending_in: usize,
    /// Cap on unflushed response bytes per connection; past it the
    /// connection is not read from until the peer drains its responses
    /// (backpressure on slow readers).
    pub max_pending_out: usize,
    /// Serving backend. Defaults to [`DataPlane::Reactor`] on Linux and
    /// [`DataPlane::ThreadPool`] elsewhere; a `Reactor` request off Linux
    /// silently resolves to the pool.
    pub data_plane: DataPlane,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            read_chunk: 16 * 1024,
            max_pending_in: 8 * 1024 * 1024,
            max_pending_out: 4 * 1024 * 1024,
            data_plane: DataPlane::default(),
        }
    }
}

impl ServerConfig {
    /// The worker count after resolving `workers == 0` to the machine
    /// size, uncapped by sharding (equivalent to
    /// [`effective_workers_for`](Self::effective_workers_for) with a
    /// huge shard count). Prefer the shard-aware form when a store is at
    /// hand — the server itself always uses it.
    pub fn effective_workers(&self) -> usize {
        self.effective_workers_for(usize::MAX)
    }

    /// The worker count serving a store with `shards` shards.
    ///
    /// `workers > 0` is honoured literally. `workers == 0` auto-sizes to
    /// `available_parallelism` clamped to `1..=shards`: one event loop
    /// per core up to the point where every worker can hold a distinct
    /// shard lock. (The old clamp of `1..=4` silently capped throughput
    /// on larger machines.)
    pub fn effective_workers_for(&self, shards: usize) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, shards.max(1))
    }
}

/// Whether an accept error is transient (retry) rather than fatal.
///
/// `ECONNABORTED`/reset: the client vanished between SYN and accept.
/// `EMFILE`/`ENFILE` (raw 24/23): fd exhaustion — pressure that clears
/// as connections close, not a reason to kill the server.
fn transient_accept_error(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::TimedOut
    ) || matches!(e.raw_os_error(), Some(23) | Some(24))
}

fn retriable_io(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// One connection owned by a worker: the socket plus its two reusable
/// buffers. `pending_out[out_cursor..]` is response bytes not yet
/// accepted by the kernel.
struct Conn {
    stream: TcpStream,
    pending_in: Vec<u8>,
    pending_out: Vec<u8>,
    out_cursor: usize,
    eof: bool,
    /// Reactor bookkeeping: the interest currently armed in the poller
    /// (readable, writable). Unused by the thread-pool plane.
    armed_read: bool,
    armed_write: bool,
}

enum ConnState {
    /// Still open; `moved` reports whether any bytes were transferred
    /// this pass (the thread-pool worker's idle detector).
    Open { moved: bool },
    /// Finished or failed; the worker drops it.
    Closed,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            pending_in: Vec::new(),
            pending_out: Vec::new(),
            out_cursor: 0,
            eof: false,
            armed_read: true,
            armed_write: false,
        }
    }

    /// Writes as much buffered output as the kernel will take.
    /// Returns `false` when the connection is dead.
    fn flush_out(&mut self, moved: &mut bool) -> bool {
        while self.out_cursor < self.pending_out.len() {
            match self.stream.write(&self.pending_out[self.out_cursor..]) {
                Ok(0) => return false,
                Ok(n) => {
                    self.out_cursor += n;
                    *moved = true;
                }
                Err(e) if retriable_io(&e) => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.out_cursor == self.pending_out.len() {
            // Fully drained: reset the cursor AND release burst capacity.
            // A slow reader can legitimately balloon this buffer to
            // max_pending_out; without the shrink every such episode
            // would pin that allocation for the connection's lifetime.
            self.pending_out.clear();
            self.out_cursor = 0;
            if self.pending_out.capacity() > BUF_RETAIN_MAX {
                self.pending_out.shrink_to(BUF_RETAIN_MAX);
            }
        } else if self.out_cursor > OUT_COMPACT_THRESHOLD {
            self.pending_out.drain(..self.out_cursor);
            self.out_cursor = 0;
        }
        true
    }

    /// Unflushed response bytes have reached the slow-reader cap.
    fn backpressured(&self, cfg: &ServerConfig) -> bool {
        self.pending_out.len() - self.out_cursor >= cfg.max_pending_out
    }

    /// The readiness this connection wants next: readable unless EOF'd or
    /// backpressured, writable while output remains unflushed.
    fn wants(&self, cfg: &ServerConfig) -> (bool, bool) {
        (
            !self.eof && !self.backpressured(cfg),
            self.out_cursor < self.pending_out.len(),
        )
    }

    /// One readiness pass: flush, read-and-serve, flush.
    ///
    /// `batch_start` is when the worker's `epoll_wait` (or poll pass)
    /// returned: its gap to tick entry is the readiness stage of the
    /// per-request latency attribution. The read/write stages sum the
    /// actual syscall durations of this pass; the parse/lock/execute/
    /// serialize stages are recorded inside the protocol layer. With
    /// neither obs nor an enabled tracer all of it collapses to one
    /// relaxed atomic load.
    #[allow(clippy::too_many_arguments)]
    fn tick(
        &mut self,
        store: &Store,
        now: u64,
        obs: Option<&ProtocolObs>,
        tracer: Option<&Tracer>,
        cfg: &ServerConfig,
        buf: &mut [u8],
        batch_start: Option<Instant>,
    ) -> ConnState {
        let timing = obs.is_some() || tracer.is_some_and(|t| t.is_enabled());
        if timing {
            if let (Some(po), Some(b0)) = (obs, batch_start) {
                po.stage_ready_us.record(b0.elapsed().as_secs_f64() * 1e6);
            }
        }
        let mut read_us = 0.0f64;
        let mut write_us = 0.0f64;
        let mut moved = false;
        if !timed_flush(self, timing, &mut write_us, &mut moved) {
            return ConnState::Closed;
        }
        if !self.eof && self.backpressured(cfg) {
            // The peer is not draining responses: this pass will not read.
            // Emitted as a zero-length marker span so stalls are visible
            // on the timeline.
            if let Some(t) = tracer {
                if t.is_enabled() {
                    t.record_at_sampled("server", "backpressure_stall", t.now_us(), 0.0);
                }
            }
        }
        while !self.eof && !self.backpressured(cfg) {
            let read_t0 = if timing { Some(Instant::now()) } else { None };
            let read_result = self.stream.read(buf);
            if let Some(t0) = read_t0 {
                read_us += t0.elapsed().as_secs_f64() * 1e6;
            }
            match read_result {
                Ok(0) => self.eof = true,
                Ok(n) => {
                    moved = true;
                    self.pending_in.extend_from_slice(&buf[..n]);
                    let consumed = if obs.is_some() {
                        serve_observed_into(
                            store,
                            &self.pending_in,
                            now,
                            obs,
                            &mut self.pending_out,
                        )
                    } else {
                        serve_traced_into(
                            store,
                            &self.pending_in,
                            now,
                            tracer,
                            &mut self.pending_out,
                        )
                    };
                    self.pending_in.drain(..consumed);
                    if self.pending_in.is_empty() && self.pending_in.capacity() > BUF_RETAIN_MAX {
                        // Same retention rule as the output side: a burst
                        // of pipelined input must not pin its high-water
                        // mark once consumed.
                        self.pending_in.shrink_to(BUF_RETAIN_MAX);
                    }
                    if consumed == 0 && self.pending_in.len() > cfg.max_pending_in {
                        // An endless incomplete "command": cut it off.
                        return ConnState::Closed;
                    }
                    if n < buf.len() {
                        // Short read: the socket is drained for now.
                        break;
                    }
                }
                Err(e) if retriable_io(&e) => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return ConnState::Closed,
            }
        }
        if !timed_flush(self, timing, &mut write_us, &mut moved) {
            return ConnState::Closed;
        }
        if timing {
            if let Some(po) = obs {
                if read_us > 0.0 {
                    po.stage_read_us.record(read_us);
                }
                if write_us > 0.0 {
                    po.stage_write_us.record(write_us);
                }
            }
            if let Some(t) = tracer.filter(|t| t.is_enabled()) {
                // Coarse sub-spans so the stages are visible on the
                // timeline next to the protocol-layer spans. Backdated by
                // their own duration: the syscalls happened just before.
                if read_us > 0.0 {
                    t.record_at_sampled("server", "stage_read", t.now_us() - read_us, read_us);
                }
                if write_us > 0.0 {
                    t.record_at_sampled("server", "stage_write", t.now_us() - write_us, write_us);
                }
            }
        }
        if self.eof && self.out_cursor == self.pending_out.len() {
            ConnState::Closed
        } else {
            ConnState::Open { moved }
        }
    }
}

/// [`Conn::flush_out`] with the write stage's syscall time accumulated
/// into `write_us` when stage timing is live.
fn timed_flush(conn: &mut Conn, timing: bool, write_us: &mut f64, moved: &mut bool) -> bool {
    let t0 = if timing { Some(Instant::now()) } else { None };
    let ok = conn.flush_out(moved);
    if let Some(t0) = t0 {
        *write_us += t0.elapsed().as_secs_f64() * 1e6;
    }
    ok
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    rx: mpsc::Receiver<TcpStream>,
    store: Arc<Store>,
    clock: Arc<dyn Clock>,
    shutdown: Arc<AtomicBool>,
    obs: Option<Arc<ProtocolObs>>,
    tracer: Option<Arc<Tracer>>,
    cfg: ServerConfig,
    active: Arc<AtomicUsize>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut buf = vec![0u8; cfg.read_chunk.max(1)];
    let mut idle: u32 = 0;
    'run: while !shutdown.load(Ordering::SeqCst) {
        let mut moved = false;
        // Adopt newly accepted connections.
        loop {
            match rx.try_recv() {
                Ok(s) => {
                    active.fetch_add(1, Ordering::SeqCst);
                    conns.push(Conn::new(s));
                    moved = true;
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    if conns.is_empty() {
                        break 'run;
                    }
                    break;
                }
            }
        }
        let now = clock.now();
        let pass_start = tracer
            .as_deref()
            .filter(|t| t.is_enabled())
            .map(|t| t.now_us());
        let batch_start = if obs.is_some() || pass_start.is_some() {
            Some(Instant::now())
        } else {
            None
        };
        let mut i = 0;
        while i < conns.len() {
            match conns[i].tick(
                &store,
                now,
                obs.as_deref(),
                tracer.as_deref(),
                &cfg,
                &mut buf,
                batch_start,
            ) {
                ConnState::Closed => {
                    active.fetch_sub(1, Ordering::SeqCst);
                    conns.swap_remove(i);
                    moved = true;
                }
                ConnState::Open { moved: m } => {
                    moved |= m;
                    i += 1;
                }
            }
        }
        // Apply deferred recency touches and reap due TTLs between passes.
        // Shards with idle rings and no due wheel deadline are skipped
        // without locking, so an idle spin costs a few atomic loads.
        store.flush_touches(now);
        // Only passes that transferred bytes become spans — an idle
        // spinning worker would otherwise flood the trace buffer.
        if moved {
            if let (Some(t), Some(t0)) = (tracer.as_deref(), pass_start) {
                t.record_at_sampled("server", "poll_busy", t0, t.now_us() - t0);
            }
        }
        if moved {
            idle = 0;
        } else {
            idle = idle.saturating_add(1);
            if idle < IDLE_SPINS {
                std::thread::yield_now();
            } else {
                std::thread::sleep(IDLE_SLEEP);
            }
        }
    }
    // Shutdown (or orphaned): drop everything we own, keeping the gauge
    // honest. Queued-but-never-adopted connections were never counted.
    active.fetch_sub(conns.len(), Ordering::SeqCst);
    drop(conns);
    while rx.try_recv().is_ok() {}
}

/// The accept thread's handoff into a reactor worker: a queue of freshly
/// accepted sockets plus the eventfd that tells the worker to adopt them.
#[cfg(target_os = "linux")]
struct Injector {
    queue: parking_lot::Mutex<Vec<TcpStream>>,
    wake: WakeFd,
}

/// Reactor observability: `reactor_*` counters shared by all workers.
struct ReactorMetrics {
    waits: Counter,
    events: Counter,
    wakeups: Counter,
    rearms: Counter,
}

impl ReactorMetrics {
    fn new(obs: &Obs) -> Self {
        Self {
            waits: obs.counter("reactor_epoll_waits_total"),
            events: obs.counter("reactor_events_total"),
            wakeups: obs.counter("reactor_wakeups_total"),
            rearms: obs.counter("reactor_rearms_total"),
        }
    }
}

/// One reactor worker: blocks in `epoll_wait`, ticks exactly the
/// connections the kernel reports ready, and rearms interest to follow
/// each connection's backpressure state.
#[cfg(target_os = "linux")]
#[allow(clippy::too_many_arguments)]
fn reactor_worker_loop(
    poller: Poller,
    injector: Arc<Injector>,
    store: Arc<Store>,
    clock: Arc<dyn Clock>,
    shutdown: Arc<AtomicBool>,
    obs: Option<Arc<ProtocolObs>>,
    tracer: Option<Arc<Tracer>>,
    metrics: Option<Arc<ReactorMetrics>>,
    cfg: ServerConfig,
    active: Arc<AtomicUsize>,
) {
    // Connection slab: the reactor token is the slot index, so readiness
    // events map to connections without hashing. Closed slots recycle
    // through the free list.
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut live = 0usize;
    let mut buf = vec![0u8; cfg.read_chunk.max(1)];
    let mut events = Events::with_capacity(EVENT_BATCH);
    'run: loop {
        let wait_start = tracer
            .as_deref()
            .filter(|t| t.is_enabled())
            .map(|t| t.now_us());
        let n = match poller.wait(&mut events, -1) {
            Ok(n) => n,
            Err(_) => break 'run,
        };
        if let Some(m) = &metrics {
            m.waits.inc();
            m.events.add(n as u64);
        }
        if let (Some(t), Some(t0)) = (tracer.as_deref(), wait_start) {
            t.record_at_sampled("reactor", "epoll_wait", t0, t.now_us() - t0);
        }
        // The instant readiness was reported: every connection ticked in
        // this batch measures its readiness stage from here.
        let batch_start = if obs.is_some() || wait_start.is_some() {
            Some(Instant::now())
        } else {
            None
        };
        let now = clock.now();
        for i in 0..events.len() {
            let ev = match events.get(i) {
                Some(ev) => ev,
                None => break,
            };
            if ev.token == WAKE_TOKEN {
                // Drain BEFORE reading the reasons: a wake arriving after
                // the drain re-readies the fd instead of being lost.
                injector.wake.drain();
                if let Some(m) = &metrics {
                    m.wakeups.inc();
                }
                if let Some(t) = tracer.as_deref() {
                    if t.is_enabled() {
                        t.record_at_sampled("reactor", "wakeup", t.now_us(), 0.0);
                    }
                }
                if shutdown.load(Ordering::SeqCst) {
                    break 'run;
                }
                let adopted = std::mem::take(&mut *injector.queue.lock());
                for s in adopted {
                    let idx = free.pop().unwrap_or_else(|| {
                        conns.push(None);
                        conns.len() - 1
                    });
                    let fd = s.as_raw_fd();
                    if poller.add(fd, idx as u64, Interest::READ).is_err() {
                        // Dead on arrival; dropping `s` closes it.
                        free.push(idx);
                        continue;
                    }
                    conns[idx] = Some(Conn::new(s));
                    live += 1;
                    active.fetch_add(1, Ordering::SeqCst);
                }
                continue;
            }
            let idx = ev.token as usize;
            // A slot may have closed earlier in this very batch; stale
            // events for it are skipped.
            let Some(slot) = conns.get_mut(idx) else {
                continue;
            };
            let Some(conn) = slot.as_mut() else {
                continue;
            };
            match conn.tick(
                &store,
                now,
                obs.as_deref(),
                tracer.as_deref(),
                &cfg,
                &mut buf,
                batch_start,
            ) {
                ConnState::Closed => {
                    let _ = poller.delete(conn.stream.as_raw_fd());
                    *slot = None;
                    free.push(idx);
                    live -= 1;
                    active.fetch_sub(1, Ordering::SeqCst);
                }
                ConnState::Open { .. } => {
                    let (want_read, want_write) = conn.wants(&cfg);
                    if want_read != conn.armed_read || want_write != conn.armed_write {
                        let rearmed = poller.modify(
                            conn.stream.as_raw_fd(),
                            idx as u64,
                            Interest {
                                readable: want_read,
                                writable: want_write,
                            },
                        );
                        if rearmed.is_ok() {
                            conn.armed_read = want_read;
                            conn.armed_write = want_write;
                            if let Some(m) = &metrics {
                                m.rearms.inc();
                            }
                            if let Some(t) = tracer.as_deref() {
                                if t.is_enabled() {
                                    t.record_at_sampled("reactor", "rearm", t.now_us(), 0.0);
                                }
                            }
                        }
                        // On rearm failure the old interest stays armed;
                        // level-triggered readiness retries next wait.
                    }
                }
            }
        }
        // Between event batches: apply deferred recency touches and reap
        // due TTLs. A fully idle reactor parks in epoll_wait and flushes
        // on the next batch — writers flush opportunistically anyway, so
        // nothing is lost, and idle connections still cost zero CPU.
        store.flush_touches(clock.now());
    }
    // Shutdown (or poller failure): drop everything we own, keeping the
    // gauge honest. Queued-but-never-adopted connections were never
    // counted.
    active.fetch_sub(live, Ordering::SeqCst);
    drop(conns);
    injector.queue.lock().clear();
}

/// The reactor accept loop: blocks in its poller until the listener is
/// ready or the wakeup fd is poked (shutdown), then accepts a burst.
#[cfg(target_os = "linux")]
#[allow(clippy::too_many_arguments)]
fn accept_loop_reactor(
    listener: TcpListener,
    poller: Poller,
    wake: Arc<WakeFd>,
    shutdown: Arc<AtomicBool>,
    mut dispatch: impl FnMut(TcpStream),
    conn_counter: Option<Counter>,
    retry_counter: Option<Counter>,
    tracer: Option<Arc<Tracer>>,
) {
    const LISTENER_TOKEN: u64 = 0;
    const ACCEPT_WAKE_TOKEN: u64 = 1;
    let mut events = Events::with_capacity(8);
    'run: loop {
        if poller.wait(&mut events, -1).is_err() {
            break;
        }
        for ev in events.iter() {
            if ev.token == ACCEPT_WAKE_TOKEN {
                wake.drain();
                if shutdown.load(Ordering::SeqCst) {
                    break 'run;
                }
            }
            debug_assert!(ev.token == LISTENER_TOKEN || ev.token == ACCEPT_WAKE_TOKEN);
        }
        // Accept the whole burst; level-triggered readiness re-reports
        // anything left when the burst outruns one pass.
        loop {
            match listener.accept() {
                Ok((s, _)) => {
                    let _accept_span = tracer.as_deref().map(|t| t.span("server", "accept"));
                    if let Some(c) = &conn_counter {
                        c.inc();
                    }
                    if s.set_nonblocking(true).is_err() {
                        continue; // dead on arrival
                    }
                    let _ = s.set_nodelay(true);
                    dispatch(s);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if transient_accept_error(&e) => {
                    if let Some(c) = &retry_counter {
                        c.inc();
                    }
                    break;
                }
                Err(_) => break 'run,
            }
        }
    }
}

/// The portable fallback accept loop (non-Linux): nonblocking accept with
/// a short sleep between polls of a quiet listener.
#[cfg(not(target_os = "linux"))]
fn accept_loop_poll(
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    mut dispatch: impl FnMut(TcpStream),
    conn_counter: Option<Counter>,
    retry_counter: Option<Counter>,
    tracer: Option<Arc<Tracer>>,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((s, _)) => {
                let _accept_span = tracer.as_deref().map(|t| t.span("server", "accept"));
                if let Some(c) = &conn_counter {
                    c.inc();
                }
                if s.set_nonblocking(true).is_err() {
                    continue; // dead on arrival
                }
                let _ = s.set_nodelay(true);
                dispatch(s);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if transient_accept_error(&e) => {
                if let Some(c) = &retry_counter {
                    c.inc();
                }
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => break,
        }
    }
}

/// A running cache server.
pub struct CacheServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    active: Arc<AtomicUsize>,
    /// Kept for the admin scrape endpoint (`/metrics`, `/journal`).
    obs: Option<Arc<Obs>>,
    /// Kept for the admin `/trace` route.
    tracer: Option<Arc<Tracer>>,
    /// The live scrape endpoint, once [`Self::start_admin`] attaches one.
    admin: Option<AdminServer>,
    #[cfg(target_os = "linux")]
    accept_wake: Option<Arc<WakeFd>>,
    #[cfg(target_os = "linux")]
    injectors: Vec<Arc<Injector>>,
}

impl CacheServer {
    /// Starts a server for `store` on `addr` (use port 0 for an ephemeral
    /// port; the bound address is available via [`Self::addr`]).
    pub fn start(store: Arc<Store>, clock: impl Clock, addr: &str) -> std::io::Result<CacheServer> {
        Self::start_with(store, clock, addr, ServerConfig::default(), None)
    }

    /// [`start`](Self::start), recording per-op protocol metrics, accept
    /// retries, connection counts, and `reactor_*` counters into `obs`
    /// when supplied.
    pub fn start_observed(
        store: Arc<Store>,
        clock: impl Clock,
        addr: &str,
        obs: Option<Arc<Obs>>,
    ) -> std::io::Result<CacheServer> {
        Self::start_with(store, clock, addr, ServerConfig::default(), obs)
    }

    /// The fully configurable entry point: data plane, worker count, and
    /// buffer bounds come from `config`.
    pub fn start_with(
        store: Arc<Store>,
        clock: impl Clock,
        addr: &str,
        config: ServerConfig,
        obs: Option<Arc<Obs>>,
    ) -> std::io::Result<CacheServer> {
        Self::start_full(store, clock, addr, config, obs, None)
    }

    /// [`start_with`](Self::start_with) plus span tracing: when `tracer`
    /// is supplied the server records `server.*` spans (accepted
    /// connections, backpressure stalls), `reactor.*` spans
    /// (`epoll_wait`, `wakeup`, `rearm`), and the protocol layer records
    /// per-request `protocol.*` spans.
    pub fn start_full(
        store: Arc<Store>,
        clock: impl Clock,
        addr: &str,
        config: ServerConfig,
        obs: Option<Arc<Obs>>,
        tracer: Option<Arc<Tracer>>,
    ) -> std::io::Result<CacheServer> {
        let listener = TcpListener::bind(addr)?;
        // Non-blocking accept: pending-connection bursts drain without
        // blocking the loop between them.
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let clock: Arc<dyn Clock> = Arc::new(clock);
        // Server threads inherit the spawner's logical pid and ambient
        // trace context: a drill that starts several in-process "nodes"
        // gets each node's server spans on that node's process lane in
        // the stitched Chrome trace.
        let spawn_pid = trace::thread_pid();
        let spawn_ctx = trace::thread_context();
        let proto_obs = obs.as_ref().map(|o| {
            let po = ProtocolObs::new(Arc::clone(o));
            match &tracer {
                Some(t) => Arc::new(po.with_tracer(Arc::clone(t))),
                None => Arc::new(po),
            }
        });
        let conn_counter = obs.as_ref().map(|o| o.counter("server_connections_total"));
        let retry_counter = obs
            .as_ref()
            .map(|o| o.counter("server_accept_transient_errors_total"));

        let n_workers = config.effective_workers_for(store.shard_count());
        if let Some(o) = &obs {
            o.gauge("reactor_workers").set(n_workers as f64);
            // Register the store_* / ttl_wheel_* read-path telemetry; the
            // per-shard atomics fold into the registry on the flush cadence.
            store.attach_telemetry(o, tracer.clone());
        }

        #[cfg(target_os = "linux")]
        {
            let use_reactor = config.data_plane == DataPlane::Reactor;
            let mut worker_handles = Vec::with_capacity(n_workers);
            let mut injectors: Vec<Arc<Injector>> = Vec::new();
            let mut senders: Vec<mpsc::Sender<TcpStream>> = Vec::new();
            if use_reactor {
                let metrics = obs.as_ref().map(|o| Arc::new(ReactorMetrics::new(o)));
                for w in 0..n_workers {
                    let poller = Poller::new()?;
                    let injector = Arc::new(Injector {
                        queue: parking_lot::Mutex::new(Vec::new()),
                        wake: WakeFd::new()?,
                    });
                    poller.add(injector.wake.raw_fd(), WAKE_TOKEN, Interest::READ)?;
                    injectors.push(Arc::clone(&injector));
                    let store = Arc::clone(&store);
                    let clock = Arc::clone(&clock);
                    let shutdown = Arc::clone(&shutdown);
                    let obs = proto_obs.clone();
                    let tracer = tracer.clone();
                    let metrics = metrics.clone();
                    let cfg = config.clone();
                    let active = Arc::clone(&active);
                    let handle = std::thread::Builder::new()
                        .name(format!("cache-reactor-{w}"))
                        .spawn(move || {
                            trace::set_thread_pid(spawn_pid);
                            trace::set_thread_context(spawn_ctx);
                            if let Some(t) = tracer.as_deref() {
                                t.register_current_thread(&format!("cache-reactor-{w}"));
                            }
                            reactor_worker_loop(
                                poller, injector, store, clock, shutdown, obs, tracer, metrics,
                                cfg, active,
                            )
                        })?;
                    worker_handles.push(handle);
                }
            } else {
                for w in 0..n_workers {
                    let (tx, rx) = mpsc::channel::<TcpStream>();
                    senders.push(tx);
                    let store = Arc::clone(&store);
                    let clock = Arc::clone(&clock);
                    let shutdown = Arc::clone(&shutdown);
                    let obs = proto_obs.clone();
                    let tracer = tracer.clone();
                    let cfg = config.clone();
                    let active = Arc::clone(&active);
                    let handle = std::thread::Builder::new()
                        .name(format!("cache-worker-{w}"))
                        .spawn(move || {
                            trace::set_thread_pid(spawn_pid);
                            trace::set_thread_context(spawn_ctx);
                            if let Some(t) = tracer.as_deref() {
                                t.register_current_thread(&format!("cache-worker-{w}"));
                            }
                            worker_loop(rx, store, clock, shutdown, obs, tracer, cfg, active)
                        })?;
                    worker_handles.push(handle);
                }
            }

            // The accept loop blocks in its own poller; stop() pokes the
            // wakeup fd instead of racing a sleep with a nudge connection.
            let accept_poller = Poller::new()?;
            let accept_wake = Arc::new(WakeFd::new()?);
            accept_poller.add(listener.as_raw_fd(), 0, Interest::READ)?;
            accept_poller.add(accept_wake.raw_fd(), 1, Interest::READ)?;
            let accept_shutdown = Arc::clone(&shutdown);
            let accept_tracer = tracer.clone();
            let wake = Arc::clone(&accept_wake);
            let dispatch_injectors: Vec<Arc<Injector>> = injectors.clone();
            let accept_handle = std::thread::Builder::new()
                .name("cache-accept".to_string())
                .spawn(move || {
                    trace::set_thread_pid(spawn_pid);
                    trace::set_thread_context(spawn_ctx);
                    if let Some(t) = accept_tracer.as_deref() {
                        t.register_current_thread("cache-accept");
                    }
                    // Round-robin connection sharding onto workers; a
                    // dropped handoff means that worker is gone (shutdown
                    // race) and dropping the stream closes the connection.
                    let mut next = 0usize;
                    let dispatch = move |s: TcpStream| {
                        if use_reactor {
                            let inj = &dispatch_injectors[next % dispatch_injectors.len()];
                            inj.queue.lock().push(s);
                            inj.wake.wake();
                        } else {
                            let _ = senders[next % senders.len()].send(s);
                        }
                        next = next.wrapping_add(1);
                    };
                    accept_loop_reactor(
                        listener,
                        accept_poller,
                        wake,
                        accept_shutdown,
                        dispatch,
                        conn_counter,
                        retry_counter,
                        accept_tracer,
                    );
                })?;
            Ok(CacheServer {
                addr: local,
                shutdown,
                accept_handle: Some(accept_handle),
                worker_handles,
                active,
                obs,
                tracer,
                admin: None,
                accept_wake: Some(accept_wake),
                injectors,
            })
        }

        #[cfg(not(target_os = "linux"))]
        {
            let mut worker_handles = Vec::with_capacity(n_workers);
            let mut senders: Vec<mpsc::Sender<TcpStream>> = Vec::new();
            for w in 0..n_workers {
                let (tx, rx) = mpsc::channel::<TcpStream>();
                senders.push(tx);
                let store = Arc::clone(&store);
                let clock = Arc::clone(&clock);
                let shutdown = Arc::clone(&shutdown);
                let obs = proto_obs.clone();
                let tracer = tracer.clone();
                let cfg = config.clone();
                let active = Arc::clone(&active);
                let handle = std::thread::Builder::new()
                    .name(format!("cache-worker-{w}"))
                    .spawn(move || {
                        trace::set_thread_pid(spawn_pid);
                        trace::set_thread_context(spawn_ctx);
                        if let Some(t) = tracer.as_deref() {
                            t.register_current_thread(&format!("cache-worker-{w}"));
                        }
                        worker_loop(rx, store, clock, shutdown, obs, tracer, cfg, active)
                    })?;
                worker_handles.push(handle);
            }
            let accept_shutdown = Arc::clone(&shutdown);
            let accept_tracer = tracer.clone();
            let accept_handle = std::thread::Builder::new()
                .name("cache-accept".to_string())
                .spawn(move || {
                    trace::set_thread_pid(spawn_pid);
                    trace::set_thread_context(spawn_ctx);
                    if let Some(t) = accept_tracer.as_deref() {
                        t.register_current_thread("cache-accept");
                    }
                    let mut next = 0usize;
                    let dispatch = move |s: TcpStream| {
                        let _ = senders[next % senders.len()].send(s);
                        next = next.wrapping_add(1);
                    };
                    accept_loop_poll(
                        listener,
                        accept_shutdown,
                        dispatch,
                        conn_counter,
                        retry_counter,
                        accept_tracer,
                    );
                })?;
            Ok(CacheServer {
                addr: local,
                shutdown,
                accept_handle: Some(accept_handle),
                worker_handles,
                active,
                obs,
                tracer,
                admin: None,
            })
        }
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Attaches the live scrape endpoint (own thread, dependency-free
    /// HTTP/1.1) serving `/metrics` (Prometheus text), `/healthz`,
    /// `/trace` (drains the span buffer as Chrome-trace JSON), and
    /// `/journal` (NDJSON). Use port 0 in `bind` for an ephemeral port;
    /// returns the bound address. Requires a server started with `obs`.
    pub fn start_admin(&mut self, bind: &str) -> std::io::Result<SocketAddr> {
        self.start_admin_with(bind, None)
    }

    /// [`start_admin`](Self::start_admin) with a caller-assembled
    /// `/healthz` body — the binary layer composes the phase machine and
    /// SLO burn state there (the server itself knows neither).
    pub fn start_admin_with(
        &mut self,
        bind: &str,
        healthz: Option<Box<dyn Fn() -> String + Send + Sync>>,
    ) -> std::io::Result<SocketAddr> {
        let obs = self.obs.clone().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "admin endpoint requires a server started with obs",
            )
        })?;
        let routes = standard_routes(obs, self.tracer.clone(), healthz);
        let admin = AdminServer::start(bind, routes)?;
        let addr = admin.addr();
        self.admin = Some(admin);
        Ok(addr)
    }

    /// The admin endpoint's bound address, when one is attached.
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin.as_ref().map(|a| a.addr())
    }

    /// Connections currently owned by workers (monitoring/test hook).
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// The resolved worker count (monitoring/bench-metadata hook).
    pub fn workers(&self) -> usize {
        self.worker_handles.len()
    }

    /// Signals shutdown and quiesces: joins the accept loop and every
    /// worker, so no server thread outlives this call.
    ///
    /// Deterministic and fast: every event loop carries a wakeup fd that
    /// is poked here, so stop returns in milliseconds even with thousands
    /// of idle connections open (regression-tested at < 50 ms). The old
    /// best-effort self-connect nudge — which could miss a poll-sleeping
    /// accept loop, or hang when the bind address was unroutable from
    /// localhost — survives only on the non-Linux fallback plane.
    pub fn stop(&mut self) {
        if let Some(mut admin) = self.admin.take() {
            admin.stop();
        }
        self.shutdown.store(true, Ordering::SeqCst);
        #[cfg(target_os = "linux")]
        {
            if let Some(w) = &self.accept_wake {
                w.wake();
            }
            for inj in &self.injectors {
                inj.wake.wake();
            }
        }
        #[cfg(not(target_os = "linux"))]
        {
            // Best-effort nudge so a poll-sleeping accept loop notices
            // promptly; failure is fine (the loop polls).
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        #[cfg(target_os = "linux")]
        self.injectors.clear();
    }
}

impl Drop for CacheServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A minimal blocking memcached text-protocol client (test/tooling use).
pub struct CacheClient {
    stream: TcpStream,
}

impl CacheClient {
    /// Connects to a server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Stores a value; returns the server's response line.
    pub fn set(&mut self, key: &str, value: &[u8], exptime: u64) -> std::io::Result<String> {
        let mut req = format!("set {key} 0 {exptime} {}\r\n", value.len()).into_bytes();
        req.extend_from_slice(value);
        req.extend_from_slice(b"\r\n");
        self.stream.write_all(&req)?;
        self.read_line()
    }

    /// Fetches a value; `None` on miss.
    pub fn get(&mut self, key: &str) -> std::io::Result<Option<Vec<u8>>> {
        self.stream.write_all(format!("get {key}\r\n").as_bytes())?;
        let header = self.read_line()?;
        if header == "END" {
            return Ok(None);
        }
        // VALUE <key> <flags> <bytes>
        let bytes: usize = header
            .rsplit(' ')
            .next()
            .and_then(|b| b.parse().ok())
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, header.clone()))?;
        let mut data = vec![0u8; bytes + 2]; // data + CRLF
        self.stream.read_exact(&mut data)?;
        data.truncate(bytes);
        let end = self.read_line()?; // END
        debug_assert_eq!(end, "END");
        Ok(Some(data))
    }

    /// Sends a `trace <token>` context line: the server stitches the
    /// spans of every later request on this connection into `ctx`'s
    /// trace. The line elicits no response bytes, so request/response
    /// accounting is unaffected.
    pub fn send_trace(&mut self, ctx: TraceContext) -> std::io::Result<()> {
        self.stream
            .write_all(format!("trace {}\r\n", ctx.encode()).as_bytes())
    }

    /// Deletes a key; returns the response line.
    pub fn delete(&mut self, key: &str) -> std::io::Result<String> {
        self.stream
            .write_all(format!("delete {key}\r\n").as_bytes())?;
        self.read_line()
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            self.stream.read_exact(&mut byte)?;
            if byte[0] == b'\n' {
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return String::from_utf8(line)
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e));
            }
            line.push(byte[0]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use std::time::{Duration, Instant};

    fn start_server() -> (CacheServer, Arc<Store>, Arc<LogicalClock>) {
        let store = Arc::new(Store::new(StoreConfig {
            capacity_bytes: 4 << 20,
            shards: 4,
        }));
        let clock = LogicalClock::new();
        let server =
            CacheServer::start(Arc::clone(&store), Arc::clone(&clock), "127.0.0.1:0").unwrap();
        (server, store, clock)
    }

    fn start_pool_server() -> (CacheServer, Arc<Store>, Arc<LogicalClock>) {
        let store = Arc::new(Store::new(StoreConfig {
            capacity_bytes: 4 << 20,
            shards: 4,
        }));
        let clock = LogicalClock::new();
        let server = CacheServer::start_with(
            Arc::clone(&store),
            Arc::clone(&clock),
            "127.0.0.1:0",
            ServerConfig {
                data_plane: DataPlane::ThreadPool,
                ..ServerConfig::default()
            },
            None,
        )
        .unwrap();
        (server, store, clock)
    }

    #[test]
    fn set_get_delete_over_tcp() {
        let (server, _store, _clock) = start_server();
        let mut client = CacheClient::connect(server.addr()).unwrap();
        assert_eq!(client.set("greeting", b"hello world", 0).unwrap(), "STORED");
        assert_eq!(
            client.get("greeting").unwrap().as_deref(),
            Some(b"hello world".as_ref())
        );
        assert_eq!(client.delete("greeting").unwrap(), "DELETED");
        assert_eq!(client.get("greeting").unwrap(), None);
    }

    #[test]
    fn set_get_delete_over_tcp_thread_pool_plane() {
        let (server, _store, _clock) = start_pool_server();
        let mut client = CacheClient::connect(server.addr()).unwrap();
        assert_eq!(client.set("greeting", b"hello world", 0).unwrap(), "STORED");
        assert_eq!(
            client.get("greeting").unwrap().as_deref(),
            Some(b"hello world".as_ref())
        );
        assert_eq!(client.delete("greeting").unwrap(), "DELETED");
        assert_eq!(client.get("greeting").unwrap(), None);
    }

    #[test]
    fn ttl_follows_the_logical_clock() {
        let (server, _store, clock) = start_server();
        let mut client = CacheClient::connect(server.addr()).unwrap();
        clock.set(1_000);
        client.set("s", b"v", 60).unwrap();
        assert!(client.get("s").unwrap().is_some());
        clock.set(1_061);
        assert_eq!(client.get("s").unwrap(), None);
    }

    #[test]
    fn concurrent_clients_share_the_store() {
        let (server, store, _clock) = start_server();
        let addr = server.addr();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut c = CacheClient::connect(addr).unwrap();
                    for i in 0..50 {
                        let key = format!("k{t}-{i}");
                        assert_eq!(c.set(&key, b"x", 0).unwrap(), "STORED");
                        assert!(c.get(&key).unwrap().is_some());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(store.len(), 200);
    }

    #[test]
    fn pipelined_batch_through_reactor() {
        // One write carrying many commands; the responses must come back
        // complete, in order, with nothing lost or duplicated.
        let (server, _store, _clock) = start_server();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_nodelay(true).unwrap();
        let mut req = Vec::new();
        let mut expect = Vec::new();
        for i in 0..200 {
            req.extend_from_slice(format!("set k{i} 0 0 2\r\nxy\r\nget k{i}\r\n").as_bytes());
            expect
                .extend_from_slice(format!("STORED\r\nVALUE k{i} 0 2\r\nxy\r\nEND\r\n").as_bytes());
        }
        s.write_all(&req).unwrap();
        let mut got = vec![0u8; expect.len()];
        s.read_exact(&mut got).unwrap();
        assert!(got == expect, "pipelined responses diverged");
    }

    #[test]
    fn server_store_is_shared_with_direct_access() {
        // A CacheNode-style owner can read what clients wrote and vice
        // versa (the warm-up pump uses exactly this path).
        let (server, store, _clock) = start_server();
        let mut client = CacheClient::connect(server.addr()).unwrap();
        client.set("from-client", b"1", 0).unwrap();
        assert!(store.get(b"from-client").is_some());
        // Note: direct store writes bypass the protocol's flag prefix, so
        // protocol reads of such keys are served but decode as empty — the
        // pump therefore always writes through `serve`/`execute`.
    }

    #[test]
    fn stop_terminates_accept_loop() {
        let (mut server, _store, _clock) = start_server();
        let addr = server.addr();
        server.stop();
        // Subsequent connections are refused or immediately closed.
        if let Ok(mut c) = CacheClient::connect(addr) {
            let r = c.set("x", b"y", 0);
            assert!(r.is_err() || TcpStream::connect(addr).is_err() || r.is_ok());
        }
    }

    #[test]
    fn stop_drains_in_flight_connections() {
        let (mut server, _store, _clock) = start_server();
        // Open several connections and leave them idle (their sockets sit
        // in a worker's readiness set).
        let clients: Vec<_> = (0..3)
            .map(|_| CacheClient::connect(server.addr()).unwrap())
            .collect();
        // Give the reactor a moment to adopt them all.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.active_connections() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(server.active_connections(), 3);
        server.stop();
        // Quiesced: the workers dropped everything they owned.
        assert_eq!(server.active_connections(), 0);
        drop(clients);
    }

    #[test]
    fn stop_returns_under_50ms_with_idle_connections_open() {
        // The shutdown-latency regression test for the old "best-effort
        // nudge": stop() must not wait out accept polls or idle sleeps.
        let (mut server, _store, _clock) = start_server();
        let clients: Vec<_> = (0..8)
            .map(|_| CacheClient::connect(server.addr()).unwrap())
            .collect();
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.active_connections() < 8 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(server.active_connections(), 8);
        let t0 = Instant::now();
        server.stop();
        let took = t0.elapsed();
        assert!(
            took < Duration::from_millis(50),
            "stop() took {took:?} with idle connections open"
        );
        drop(clients);
    }

    #[test]
    fn closed_connections_are_reaped_while_running() {
        let (mut server, _store, _clock) = start_server();
        for _ in 0..5 {
            // Connect and immediately disconnect; the worker notices EOF.
            drop(CacheClient::connect(server.addr()).unwrap());
        }
        let _keep = CacheClient::connect(server.addr()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let n = server.active_connections();
            if n <= 1 || Instant::now() > deadline {
                assert!(n <= 1, "closed connections not reaped: {n} tracked");
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        server.stop();
    }

    #[test]
    fn stop_is_idempotent_and_drop_safe() {
        let (mut server, _store, _clock) = start_server();
        server.stop();
        server.stop(); // second stop must not hang or panic
    }

    #[test]
    fn explicit_worker_count_is_honoured() {
        let store = Arc::new(Store::with_capacity(1 << 20));
        let clock = LogicalClock::new();
        let mut server = CacheServer::start_with(
            Arc::clone(&store),
            clock,
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
            None,
        )
        .unwrap();
        assert_eq!(server.workers(), 2);
        // Both workers serve traffic (round-robin hands them alternate
        // connections).
        for _ in 0..2 {
            let mut c = CacheClient::connect(server.addr()).unwrap();
            assert_eq!(c.set("k", b"v", 0).unwrap(), "STORED");
        }
        server.stop();
    }

    #[test]
    fn auto_worker_sizing_follows_parallelism_and_shards() {
        let cfg = ServerConfig::default();
        let par = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // Auto-sizing is parallelism clamped by the shard count — no
        // arbitrary ceiling (the old clamp was 1..=4).
        assert_eq!(cfg.effective_workers_for(1024), par.clamp(1, 1024));
        assert_eq!(cfg.effective_workers_for(1), 1);
        assert_eq!(cfg.effective_workers_for(0), 1, "degenerate shard count");
        assert_eq!(cfg.effective_workers(), par);
        // Explicit counts are taken literally, shards notwithstanding.
        let explicit = ServerConfig {
            workers: 7,
            ..ServerConfig::default()
        };
        assert_eq!(explicit.effective_workers_for(2), 7);
    }

    #[test]
    fn slow_reader_buffers_release_burst_capacity_once_drained() {
        // A slow reader legitimately balloons pending_out up to the
        // backpressure cap; once the peer drains, the burst capacity must
        // be released (the old code retained it for the connection's
        // lifetime — unbounded aggregate memory across many connections).
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (stream, _) = listener.accept().unwrap();
        stream.set_nonblocking(true).unwrap();
        peer.set_nonblocking(true).unwrap();

        let store = Store::with_capacity(64 << 20);
        let value_len = 8 * 1024;
        let framed = crate::protocol::encode_value(0, &vec![b'v'; value_len]);
        store.set_at(b"big".to_vec(), framed, 0, None);

        let cfg = ServerConfig {
            max_pending_out: 1 << 20, // 1 MiB backpressure cap
            ..ServerConfig::default()
        };
        let mut conn = Conn::new(stream);
        let mut buf = vec![0u8; cfg.read_chunk];

        // The peer pipelines 2000 gets of an 8 KiB value (≈16 MiB of
        // responses) and reads nothing yet.
        let n_gets = 2000usize;
        let req = "get big\r\n".repeat(n_gets);
        peer.write_all(req.as_bytes()).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let mut ballooned = 0usize;
        for _ in 0..50 {
            match conn.tick(&store, 0, None, None, &cfg, &mut buf, None) {
                ConnState::Open { .. } => {}
                ConnState::Closed => panic!("connection died while serving"),
            }
            ballooned = ballooned.max(conn.pending_out.capacity());
            if conn.backpressured(&cfg) {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            ballooned > BUF_RETAIN_MAX,
            "test did not balloon the buffer (capacity {ballooned})"
        );

        // Now the peer drains everything while the server keeps flushing.
        let expected: usize = n_gets * ("VALUE big 0 \r\n\r\nEND\r\n".len() + 4 + value_len);
        let mut drained = 0usize;
        let mut chunk = vec![0u8; 256 * 1024];
        let deadline = Instant::now() + Duration::from_secs(30);
        while drained < expected {
            assert!(
                Instant::now() < deadline,
                "drain stalled at {drained} bytes"
            );
            match peer.read(&mut chunk) {
                Ok(0) => panic!("server closed mid-drain"),
                Ok(n) => drained += n,
                Err(e) if retriable_io(&e) => {}
                Err(e) => panic!("peer read failed: {e}"),
            }
            match conn.tick(&store, 0, None, None, &cfg, &mut buf, None) {
                ConnState::Open { .. } => {}
                ConnState::Closed => panic!("connection died while draining"),
            }
        }
        assert!(conn.pending_out.is_empty(), "output not fully flushed");
        assert_eq!(conn.out_cursor, 0, "cursor must reset on a full drain");
        assert!(
            conn.pending_out.capacity() <= BUF_RETAIN_MAX,
            "burst capacity retained: {} bytes",
            conn.pending_out.capacity()
        );
        assert!(
            conn.pending_in.capacity() <= BUF_RETAIN_MAX,
            "input burst capacity retained: {} bytes",
            conn.pending_in.capacity()
        );
    }

    #[test]
    fn traced_server_records_reactor_and_protocol_spans() {
        let store = Arc::new(Store::new(StoreConfig {
            capacity_bytes: 4 << 20,
            shards: 4,
        }));
        let clock = LogicalClock::new();
        let tracer = Tracer::all(8192);
        let mut server = CacheServer::start_full(
            Arc::clone(&store),
            clock,
            "127.0.0.1:0",
            ServerConfig::default(),
            None,
            Some(Arc::clone(&tracer)),
        )
        .unwrap();
        let mut client = CacheClient::connect(server.addr()).unwrap();
        client.set("k", b"v", 0).unwrap();
        assert!(client.get("k").unwrap().is_some());
        server.stop();
        let cats = tracer.categories();
        assert!(cats.contains(&"server"), "{cats:?}");
        assert!(cats.contains(&"protocol"), "{cats:?}");
        let names: std::collections::BTreeSet<&'static str> =
            tracer.spans().iter().map(|r| r.name).collect();
        for expect in ["accept", "serve"] {
            assert!(names.contains(expect), "missing {expect:?}: {names:?}");
        }
        #[cfg(target_os = "linux")]
        {
            assert!(cats.contains(&"reactor"), "{cats:?}");
            for expect in ["epoll_wait", "wakeup"] {
                assert!(names.contains(expect), "missing {expect:?}: {names:?}");
            }
        }
        spotcache_obs::export::validate_json(&tracer.chrome_trace_json()).unwrap();
    }

    #[test]
    fn traced_thread_pool_still_records_poll_busy() {
        let store = Arc::new(Store::with_capacity(4 << 20));
        let clock = LogicalClock::new();
        let tracer = Tracer::all(8192);
        let mut server = CacheServer::start_full(
            Arc::clone(&store),
            clock,
            "127.0.0.1:0",
            ServerConfig {
                data_plane: DataPlane::ThreadPool,
                ..ServerConfig::default()
            },
            None,
            Some(Arc::clone(&tracer)),
        )
        .unwrap();
        let mut client = CacheClient::connect(server.addr()).unwrap();
        client.set("k", b"v", 0).unwrap();
        server.stop();
        let names: std::collections::BTreeSet<&'static str> =
            tracer.spans().iter().map(|r| r.name).collect();
        assert!(names.contains("poll_busy"), "{names:?}");
    }

    #[test]
    fn observed_server_records_ops_and_connections() {
        let store = Arc::new(Store::new(StoreConfig {
            capacity_bytes: 4 << 20,
            shards: 4,
        }));
        let clock = LogicalClock::new();
        clock.set(42);
        let obs = Arc::new(Obs::new());
        let mut server = CacheServer::start_observed(
            Arc::clone(&store),
            Arc::clone(&clock),
            "127.0.0.1:0",
            Some(Arc::clone(&obs)),
        )
        .unwrap();
        let mut client = CacheClient::connect(server.addr()).unwrap();
        client.set("k", b"v", 0).unwrap();
        assert!(client.get("k").unwrap().is_some());
        assert!(client.get("missing").unwrap().is_none());
        server.stop();
        assert_eq!(obs.counter("server_connections_total").get(), 1);
        assert_eq!(obs.counter("cache_store_total").get(), 1);
        assert_eq!(obs.counter("cache_get_total").get(), 2);
        assert_eq!(obs.counter("cache_get_hits_total").get(), 1);
        assert_eq!(obs.counter("cache_get_misses_total").get(), 1);
        assert!(obs.histogram("cache_op_latency_us").count() >= 3);
        assert!(obs.gauge("reactor_workers").get() >= 1.0);
        #[cfg(target_os = "linux")]
        {
            assert!(obs.counter("reactor_epoll_waits_total").get() >= 1);
            assert!(obs.counter("reactor_wakeups_total").get() >= 1);
        }
        // Journal timestamps come from the logical clock, not wall time.
        assert!(obs.journal().events().iter().all(|e| e.t == 42));
    }

    #[test]
    fn observed_server_fills_stage_histograms() {
        let store = Arc::new(Store::with_capacity(4 << 20));
        let clock = LogicalClock::new();
        let obs = Arc::new(Obs::new());
        let mut server = CacheServer::start_observed(
            Arc::clone(&store),
            clock,
            "127.0.0.1:0",
            Some(Arc::clone(&obs)),
        )
        .unwrap();
        let mut client = CacheClient::connect(server.addr()).unwrap();
        client.set("k", b"v", 0).unwrap();
        assert!(client.get("k").unwrap().is_some());
        server.stop();
        // Every stage of the attribution pipeline saw at least one sample:
        // readiness gap, read/write syscalls (server layer) and parse/
        // lock/execute/serialize (protocol layer).
        for stage in [
            "stage_ready_us",
            "stage_read_us",
            "stage_write_us",
            "stage_parse_us",
            "stage_lock_us",
            "stage_execute_us",
            "stage_serialize_us",
        ] {
            assert!(obs.histogram(stage).count() >= 1, "no samples in {stage}");
        }
    }

    #[test]
    fn trace_context_propagates_over_tcp() {
        let store = Arc::new(Store::with_capacity(4 << 20));
        let clock = LogicalClock::new();
        let tracer = Tracer::all(8192);
        let mut server = CacheServer::start_full(
            Arc::clone(&store),
            clock,
            "127.0.0.1:0",
            ServerConfig::default(),
            None,
            Some(Arc::clone(&tracer)),
        )
        .unwrap();
        let ctx = spotcache_obs::TraceContext {
            trace_id: 0xabcd_ef01,
            parent_span: 0x42,
            sampled: true,
        };
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_nodelay(true).unwrap();
        s.write_all(format!("trace {}\r\nget k\r\n", ctx.encode()).as_bytes())
            .unwrap();
        let mut got = vec![0u8; 5];
        s.read_exact(&mut got).unwrap();
        assert_eq!(got, b"END\r\n");
        server.stop();
        let serve_spans: Vec<_> = tracer
            .spans()
            .into_iter()
            .filter(|r| r.name == "serve")
            .collect();
        assert!(!serve_spans.is_empty());
        assert!(
            serve_spans
                .iter()
                .all(|r| r.trace_id == 0xabcd_ef01 && r.parent_id == 0x42),
            "serve spans must join the propagated trace: {serve_spans:?}"
        );
    }

    #[test]
    fn admin_endpoint_scrapes_a_live_server() {
        let store = Arc::new(Store::with_capacity(4 << 20));
        let clock = LogicalClock::new();
        let obs = Arc::new(Obs::new());
        let tracer = Tracer::all(8192);
        let mut server = CacheServer::start_full(
            Arc::clone(&store),
            clock,
            "127.0.0.1:0",
            ServerConfig::default(),
            Some(Arc::clone(&obs)),
            Some(Arc::clone(&tracer)),
        )
        .unwrap();
        let admin = server.start_admin("127.0.0.1:0").unwrap();
        assert_eq!(server.admin_addr(), Some(admin));
        let mut client = CacheClient::connect(server.addr()).unwrap();
        client.set("k", b"v", 0).unwrap();
        assert!(client.get("k").unwrap().is_some());

        let timeout = Duration::from_secs(2);
        let (code, body) = spotcache_obs::http::http_get(admin, "/metrics", timeout).unwrap();
        assert_eq!(code, 200);
        spotcache_obs::export::validate_prometheus_text(&body)
            .unwrap_or_else(|at| panic!("invalid exposition at line {at}:\n{body}"));
        assert!(body.contains("cache_get_total 1"), "{body}");
        assert!(body.contains("stage_ready_us"), "{body}");

        let (code, body) = spotcache_obs::http::http_get(admin, "/healthz", timeout).unwrap();
        assert_eq!(code, 200);
        spotcache_obs::export::validate_json(&body).unwrap();

        let (code, body) = spotcache_obs::http::http_get(admin, "/trace", timeout).unwrap();
        assert_eq!(code, 200);
        spotcache_obs::export::validate_json(&body).unwrap();
        assert!(body.contains("\"serve\""), "live spans drained: {body}");

        server.stop();
        assert!(
            spotcache_obs::http::http_get(admin, "/metrics", timeout).is_err(),
            "admin endpoint must stop with the server"
        );
    }

    #[test]
    fn start_admin_requires_obs() {
        let (mut server, _store, _clock) = start_server();
        assert!(server.start_admin("127.0.0.1:0").is_err());
        server.stop();
    }
}
