//! A sharded LRU key-value store with byte-accurate memory accounting.
//!
//! Mirrors the memcached behaviours the paper's evaluation depends on:
//! least-recently-used eviction under a memory budget, get/set/delete,
//! optional TTLs (against a caller-supplied logical clock so simulations
//! stay deterministic), and hit/miss/eviction counters.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

use crate::lru::LruList;

/// A sink for store mutations, installed with [`Store::set_mutation_sink`].
///
/// The replication stream ([`crate::replication`]) implements this to tail
/// hot-key writes into its bounded queue. Callbacks run on the mutating
/// thread **after** the shard lock is released, so a sink may take its own
/// locks but must stay cheap — it sits on the data plane's write path.
pub trait MutationSink: Send + Sync {
    /// A key was stored (the value is the raw stored bytes, including the
    /// protocol's flag prefix when the write came through the protocol
    /// layer). `ttl` is the relative TTL the writer supplied, if any.
    fn on_set(&self, key: &Bytes, raw_value: &Bytes, ttl: Option<u64>);

    /// A key was deleted (only called when the key existed).
    fn on_delete(&self, key: &[u8]);
}

/// Fixed per-item metadata overhead we account alongside key+value bytes
/// (memcached's item header is ~48-56 bytes; we use a round number).
pub const ITEM_OVERHEAD: usize = 56;

/// Store construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Memory budget across all shards, bytes.
    pub capacity_bytes: usize,
    /// Number of shards (each with its own lock); clamped to at least 1.
    pub shards: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            capacity_bytes: 64 << 20,
            shards: 8,
        }
    }
}

/// Cumulative statistics, aggregated across shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Successful gets.
    pub hits: u64,
    /// Gets that found nothing (or an expired item).
    pub misses: u64,
    /// Items evicted by the LRU policy.
    pub evictions: u64,
    /// Set operations.
    pub sets: u64,
    /// Delete operations that removed something.
    pub deletes: u64,
    /// Gets that found an item past its TTL.
    pub expirations: u64,
}

impl CacheStats {
    /// Hit rate over all gets; 0 when no gets happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn add(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.sets += other.sets;
        self.deletes += other.deletes;
        self.expirations += other.expirations;
    }
}

/// Conditional-store semantics for [`Store::set_policy_at`] (the store-side
/// counterpart of the protocol's `set`/`add`/`replace` verbs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetPolicy {
    /// Store unconditionally (`set`).
    Always,
    /// Store only when the key is absent (`add`).
    IfAbsent,
    /// Store only when the key is present (`replace`).
    IfPresent,
}

/// Outcome of a policy-checked store operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOutcome {
    /// The item was stored.
    Stored,
    /// The policy rejected the store (key presence didn't match).
    NotStored,
    /// The item exceeds the shard budget and was rejected (any previous
    /// value under the key is gone, mirroring memcached's oversized-item
    /// behaviour).
    TooLarge,
}

/// One-sweep aggregate view of the store: statistics, occupancy, and
/// capacity gathered with a single pass over the shard locks.
///
/// Observability samplers should prefer one [`Store::snapshot`] call over
/// separate `stats()` / `used_bytes()` / `len()` calls — each of those is
/// itself a full sweep, so naive per-field sampling quadruples lock
/// traffic on the hot shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreSnapshot {
    /// Cumulative operation statistics.
    pub stats: CacheStats,
    /// Bytes accounted to live items (keys + values + overhead).
    pub used_bytes: usize,
    /// Total capacity across shards.
    pub capacity_bytes: usize,
    /// Number of live items.
    pub items: usize,
}

struct Entry {
    value: Bytes,
    lru_idx: usize,
    bytes: usize,
    expires_at: Option<u64>,
}

struct Shard {
    map: HashMap<Bytes, Entry>,
    lru: LruList<Bytes>,
    used_bytes: usize,
    capacity_bytes: usize,
    stats: CacheStats,
}

impl Shard {
    fn new(capacity_bytes: usize) -> Self {
        Self {
            map: HashMap::new(),
            lru: LruList::new(),
            used_bytes: 0,
            capacity_bytes,
            stats: CacheStats::default(),
        }
    }

    fn get(&mut self, key: &[u8], now: u64) -> Option<Bytes> {
        // Split borrow: look up, then decide.
        let expired = match self.map.get(key) {
            Some(e) => e.expires_at.is_some_and(|t| t <= now),
            None => {
                self.stats.misses += 1;
                return None;
            }
        };
        if expired {
            self.remove(key);
            self.stats.expirations += 1;
            self.stats.misses += 1;
            return None;
        }
        let e = self.map.get(key).expect("checked above");
        let (idx, value) = (e.lru_idx, e.value.clone());
        self.lru.touch(idx);
        self.stats.hits += 1;
        Some(value)
    }

    /// Applies a policy-checked store under the one lock the caller holds:
    /// presence check and insertion are a single critical section.
    fn apply(
        &mut self,
        policy: SetPolicy,
        key: Bytes,
        value: Bytes,
        now: u64,
        ttl: Option<u64>,
    ) -> SetOutcome {
        let exists = self.map.contains_key(&key);
        let store_it = match policy {
            SetPolicy::Always => true,
            SetPolicy::IfAbsent => !exists,
            SetPolicy::IfPresent => exists,
        };
        if !store_it {
            return SetOutcome::NotStored;
        }
        if self.set(key, value, now, ttl) {
            SetOutcome::Stored
        } else {
            SetOutcome::TooLarge
        }
    }

    /// Inserts an item; returns `false` when it exceeds the shard budget
    /// (the item is rejected and any previous value is removed).
    fn set(&mut self, key: Bytes, value: Bytes, now: u64, ttl: Option<u64>) -> bool {
        self.stats.sets += 1;
        let bytes = key.len() + value.len() + ITEM_OVERHEAD;
        if let Some(old) = self.map.remove(&key) {
            self.lru.remove(old.lru_idx);
            self.used_bytes -= old.bytes;
        }
        // memcached rejects items larger than the slab limit; we reject
        // items larger than the whole shard the same way (silently dropping
        // would corrupt accounting; callers can check `contains`).
        if bytes > self.capacity_bytes {
            return false;
        }
        while self.used_bytes + bytes > self.capacity_bytes {
            let victim = self.lru.pop_back().expect("used > 0 implies non-empty LRU");
            let old = self.map.remove(&victim).expect("LRU entry is in the map");
            self.used_bytes -= old.bytes;
            self.stats.evictions += 1;
        }
        let idx = self.lru.push_front(key.clone());
        let expires_at = ttl.map(|d| now + d);
        self.map.insert(
            key,
            Entry {
                value,
                lru_idx: idx,
                bytes,
                expires_at,
            },
        );
        self.used_bytes += bytes;
        true
    }

    fn remove(&mut self, key: &[u8]) -> bool {
        if let Some(e) = self.map.remove(key) {
            self.lru.remove(e.lru_idx);
            self.used_bytes -= e.bytes;
            true
        } else {
            false
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.lru = LruList::new();
        self.used_bytes = 0;
    }
}

/// A sharded LRU store.
///
/// Capacity is split evenly across shards, matching memcached's per-slab
/// independence: a hot shard can evict while another has room.
///
/// # Examples
///
/// ```
/// use spotcache_cache::store::Store;
///
/// let store = Store::with_capacity(1 << 20);
/// store.set("user:1", "alice");
/// assert_eq!(store.get(b"user:1").as_deref(), Some(b"alice".as_ref()));
/// assert!(store.delete(b"user:1"));
/// ```
pub struct Store {
    shards: Vec<Mutex<Shard>>,
    /// Optional mutation tap (replication). Read-locked per write; writes
    /// are rare (installation at topology changes), so the read path is an
    /// uncontended `RwLock` read.
    sink: RwLock<Option<Arc<dyn MutationSink>>>,
}

thread_local! {
    /// Reusable per-key shard-index scratch for the batched operations, so
    /// steady-state batches allocate nothing.
    static SHARD_SCRATCH: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

impl Store {
    /// Creates a store from a configuration.
    pub fn new(config: StoreConfig) -> Self {
        let n = config.shards.max(1);
        let per_shard = config.capacity_bytes / n;
        Self {
            shards: (0..n).map(|_| Mutex::new(Shard::new(per_shard))).collect(),
            sink: RwLock::new(None),
        }
    }

    /// Installs (or removes, with `None`) the mutation tap. Subsequent
    /// successful sets and deletes are reported to the sink; in-flight
    /// operations on other threads may still miss it for one operation.
    pub fn set_mutation_sink(&self, sink: Option<Arc<dyn MutationSink>>) {
        *self.sink.write() = sink;
    }

    #[inline]
    fn tap_set(&self, key: &Bytes, value: &Bytes, ttl: Option<u64>) {
        if let Some(s) = self.sink.read().as_ref() {
            s.on_set(key, value, ttl);
        }
    }

    #[inline]
    fn tap_delete(&self, key: &[u8]) {
        if let Some(s) = self.sink.read().as_ref() {
            s.on_delete(key);
        }
    }

    #[inline]
    fn sink_installed(&self) -> bool {
        self.sink.read().is_some()
    }

    /// Creates a single-shard store with the given byte budget.
    pub fn with_capacity(capacity_bytes: usize) -> Self {
        Self::new(StoreConfig {
            capacity_bytes,
            shards: 1,
        })
    }

    fn shard_idx(&self, key: &[u8]) -> usize {
        // FNV-1a; cheap and adequate for shard selection.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }

    fn shard_for(&self, key: &[u8]) -> &Mutex<Shard> {
        &self.shards[self.shard_idx(key)]
    }

    /// Fetches a key at logical time `now` (TTL-aware).
    pub fn get_at(&self, key: &[u8], now: u64) -> Option<Bytes> {
        self.shard_for(key).lock().get(key, now)
    }

    /// Fetches a key, ignoring TTLs (logical time 0).
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        self.get_at(key, 0)
    }

    /// Batched fetch: looks up every key of a pipelined batch, grouping
    /// keys by shard so each shard lock is taken **once per batch** rather
    /// than once per key. Results land in `out` (cleared first) in input
    /// order; values are refcounted [`Bytes`] clones, so the bytes stay
    /// zero-copy until a response writer serializes them.
    ///
    /// Within a shard, keys are processed in input order, so hit/miss
    /// accounting, TTL expirations, and LRU touch order are identical to
    /// issuing the gets one at a time.
    pub fn get_many_into<'k, K>(&self, keys: K, now: u64, out: &mut Vec<Option<Bytes>>)
    where
        K: Iterator<Item = &'k [u8]> + Clone,
    {
        out.clear();
        if self.shards.len() == 1 {
            let mut sh = self.shards[0].lock();
            for k in keys {
                out.push(sh.get(k, now));
            }
            return;
        }
        let mut ids = SHARD_SCRATCH.with(|s| std::mem::take(&mut *s.borrow_mut()));
        ids.clear();
        let mut n = 0usize;
        for k in keys.clone() {
            ids.push(self.shard_idx(k) as u32);
            n += 1;
        }
        out.resize_with(n, || None);
        for s in 0..self.shards.len() as u32 {
            if !ids.contains(&s) {
                continue;
            }
            let mut sh = self.shards[s as usize].lock();
            for ((i, k), &id) in keys.clone().enumerate().zip(ids.iter()) {
                if id == s {
                    out[i] = sh.get(k, now);
                }
            }
        }
        SHARD_SCRATCH.with(|s| *s.borrow_mut() = ids);
    }

    /// [`get_many_into`](Self::get_many_into) into a fresh vector.
    pub fn get_many(&self, keys: &[&[u8]], now: u64) -> Vec<Option<Bytes>> {
        let mut out = Vec::with_capacity(keys.len());
        self.get_many_into(keys.iter().copied(), now, &mut out);
        out
    }

    /// Batched insert: stores every `(key, value, ttl)` item, grouping by
    /// shard and taking each shard lock once per batch. Items mapping to
    /// the same shard are applied in input order, so the final state
    /// matches sequential `set_at` calls. Returns how many items were
    /// stored (an item is rejected only when it exceeds its shard budget).
    pub fn set_many_at(&self, items: Vec<(Bytes, Bytes, Option<u64>)>, now: u64) -> usize {
        // The tap fires outside the shard locks; stored items are staged
        // only when a sink is installed (refcount clones, no byte copies).
        let tapping = self.sink_installed();
        let mut tapped: Vec<(Bytes, Bytes, Option<u64>)> = Vec::new();
        let mut stored = 0usize;
        if self.shards.len() == 1 {
            let mut sh = self.shards[0].lock();
            for (k, v, ttl) in items {
                let ok = sh.set(k.clone(), v.clone(), now, ttl);
                if ok && tapping {
                    tapped.push((k, v, ttl));
                }
                stored += ok as usize;
            }
            drop(sh);
            for (k, v, ttl) in &tapped {
                self.tap_set(k, v, *ttl);
            }
            return stored;
        }
        let ids: Vec<u32> = items
            .iter()
            .map(|(k, _, _)| self.shard_idx(k) as u32)
            .collect();
        let mut slots: Vec<Option<(Bytes, Bytes, Option<u64>)>> =
            items.into_iter().map(Some).collect();
        for s in 0..self.shards.len() as u32 {
            if !ids.contains(&s) {
                continue;
            }
            let mut sh = self.shards[s as usize].lock();
            for (slot, &id) in slots.iter_mut().zip(ids.iter()) {
                if id == s {
                    let (k, v, ttl) = slot.take().expect("each slot is taken exactly once");
                    let ok = sh.set(k.clone(), v.clone(), now, ttl);
                    if ok && tapping {
                        tapped.push((k, v, ttl));
                    }
                    stored += ok as usize;
                }
            }
        }
        for (k, v, ttl) in &tapped {
            self.tap_set(k, v, *ttl);
        }
        stored
    }

    /// Inserts a key with an optional TTL at logical time `now`.
    pub fn set_at(
        &self,
        key: impl Into<Bytes>,
        value: impl Into<Bytes>,
        now: u64,
        ttl: Option<u64>,
    ) {
        self.shard_for_owned(key.into(), value.into(), now, ttl);
    }

    fn shard_for_owned(&self, key: Bytes, value: Bytes, now: u64, ttl: Option<u64>) {
        // `Bytes` clones are refcount bumps; the tap fires after the shard
        // lock is released.
        let stored = self
            .shard_for(&key)
            .lock()
            .set(key.clone(), value.clone(), now, ttl);
        if stored {
            self.tap_set(&key, &value, ttl);
        }
    }

    /// Inserts a key with no TTL.
    pub fn set(&self, key: impl Into<Bytes>, value: impl Into<Bytes>) {
        self.set_at(key, value, 0, None);
    }

    /// Policy-checked insert (`set`/`add`/`replace` semantics): the
    /// presence check and the insertion happen under a single shard lock
    /// acquisition, unlike a `contains` + `set_at` + `contains` sequence
    /// which takes the lock three times per command.
    ///
    /// Presence ignores TTLs, matching the protocol layer's historical
    /// `contains`-based semantics (an expired-but-unreaped item still
    /// blocks `add` and satisfies `replace`).
    pub fn set_policy_at(
        &self,
        key: impl Into<Bytes>,
        value: impl Into<Bytes>,
        now: u64,
        ttl: Option<u64>,
        policy: SetPolicy,
    ) -> SetOutcome {
        let key = key.into();
        let value = value.into();
        let out = self
            .shard_for(&key)
            .lock()
            .apply(policy, key.clone(), value.clone(), now, ttl);
        if out == SetOutcome::Stored {
            self.tap_set(&key, &value, ttl);
        }
        out
    }

    /// Deletes a key; returns whether it existed. Removal and the
    /// `deletes` statistic are updated under one lock acquisition.
    pub fn delete(&self, key: &[u8]) -> bool {
        let mut sh = self.shard_for(key).lock();
        let removed = sh.remove(key);
        if removed {
            sh.stats.deletes += 1;
        }
        drop(sh);
        if removed {
            self.tap_delete(key);
        }
        removed
    }

    /// Snapshot of live, unexpired items in approximate hottest-first
    /// order, up to `max_items`.
    ///
    /// "Hottest-first" is per-shard LRU recency (most-recently-used first)
    /// with the shards interleaved round-robin — the same
    /// hottest-first-copy order the recovery model assumes for the warm-up
    /// pump, to within shard granularity. Values are the raw stored bytes
    /// (flag prefix included when written through the protocol); the third
    /// element is the TTL remaining at `now`, if any. Each shard lock is
    /// held only while that shard is walked.
    ///
    /// Per-shard collection is capped by what the round-robin merge can
    /// actually take (computed from a cheap length pre-pass), so a call
    /// with a tight budget clones ~`max_items` entries total instead of up
    /// to `shards × max_items`; the merge then *moves* the collected items
    /// into the output. When expired-but-unreaped items inflate a shard's
    /// length the caps are approximate and the result may fall slightly
    /// short of `max_items` even though deeper live items exist — within
    /// the "approximate hottest-first" contract.
    pub fn hot_snapshot_at(&self, max_items: usize, now: u64) -> Vec<(Bytes, Bytes, Option<u64>)> {
        if max_items == 0 {
            return Vec::new();
        }
        // Length pre-pass: an upper bound on each shard's live items.
        let lens: Vec<usize> = self.shards.iter().map(|s| s.lock().map.len()).collect();
        let quotas = round_robin_quotas(&lens, max_items);
        let mut per_shard: Vec<std::vec::IntoIter<(Bytes, Bytes, Option<u64>)>> =
            Vec::with_capacity(self.shards.len());
        let mut collected_total = 0usize;
        for (s, &quota) in self.shards.iter().zip(&quotas) {
            if quota == 0 {
                per_shard.push(Vec::new().into_iter());
                continue;
            }
            let sh = s.lock();
            let mut items = Vec::with_capacity(quota.min(sh.map.len()));
            for key in sh.lru.iter() {
                if items.len() >= quota {
                    break;
                }
                let Some(e) = sh.map.get(key) else { continue };
                if e.expires_at.is_some_and(|t| t <= now) {
                    continue;
                }
                let ttl = e.expires_at.map(|t| t - now);
                items.push((key.clone(), e.value.clone(), ttl));
            }
            collected_total += items.len();
            per_shard.push(items.into_iter());
        }
        // Round-robin merge: the i-th hottest of every shard before any
        // (i+1)-th, approximating global recency order. Items are moved
        // out of the per-shard vectors, not re-cloned.
        let mut out = Vec::with_capacity(collected_total.min(max_items));
        while out.len() < max_items {
            let mut any = false;
            for items in per_shard.iter_mut() {
                if let Some(item) = items.next() {
                    if out.len() < max_items {
                        out.push(item);
                    }
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        out
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Snapshot of one shard's live, unexpired items in LRU recency order
    /// (most-recently-used first), holding only that shard's lock.
    ///
    /// This is the checkpoint writer's walk (`spotcache-recovery`): full
    /// shard state, one framed shard at a time, so peak memory during a
    /// checkpoint is one shard's items rather than the whole store. The
    /// TTL is the remaining TTL at `now`, exactly as
    /// [`hot_snapshot_at`](Self::hot_snapshot_at) reports it.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shard_count()`.
    pub fn shard_snapshot_at(&self, shard: usize, now: u64) -> Vec<(Bytes, Bytes, Option<u64>)> {
        let sh = self.shards[shard].lock();
        let mut items = Vec::with_capacity(sh.map.len());
        for key in sh.lru.iter() {
            let Some(e) = sh.map.get(key) else { continue };
            if e.expires_at.is_some_and(|t| t <= now) {
                continue;
            }
            let ttl = e.expires_at.map(|t| t - now);
            items.push((key.clone(), e.value.clone(), ttl));
        }
        items
    }

    /// Whether a key is present (does not touch LRU order or stats).
    pub fn contains(&self, key: &[u8]) -> bool {
        self.shard_for(key).lock().map.contains_key(key)
    }

    /// Gathers statistics, occupancy, and capacity in **one** sweep over
    /// the shard locks. Prefer this over separate [`stats`](Self::stats) /
    /// [`used_bytes`](Self::used_bytes) / [`len`](Self::len) calls when
    /// more than one field is needed (e.g. obs sampling, the protocol's
    /// `stats` command).
    pub fn snapshot(&self) -> StoreSnapshot {
        let mut snap = StoreSnapshot::default();
        for s in &self.shards {
            let sh = s.lock();
            snap.stats.add(&sh.stats);
            snap.used_bytes += sh.used_bytes;
            snap.capacity_bytes += sh.capacity_bytes;
            snap.items += sh.map.len();
        }
        snap
    }

    /// Total bytes accounted (keys + values + per-item overhead).
    pub fn used_bytes(&self) -> usize {
        self.snapshot().used_bytes
    }

    /// Total capacity across shards.
    pub fn capacity_bytes(&self) -> usize {
        self.snapshot().capacity_bytes
    }

    /// Number of live items.
    pub fn len(&self) -> usize {
        self.snapshot().items
    }

    /// Whether the store holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregated statistics across shards.
    pub fn stats(&self) -> CacheStats {
        self.snapshot().stats
    }

    /// Drops every item (a revoked node's RAM vanishing).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().clear();
        }
    }
}

/// Per-shard collection caps for [`Store::hot_snapshot_at`]: simulates
/// the round-robin merge over the shard lengths and returns how many
/// items the merge would actually take from each shard, so collection
/// clones only what the merge keeps. Quotas sum to
/// `min(budget, sum(lens))`.
fn round_robin_quotas(lens: &[usize], budget: usize) -> Vec<usize> {
    let total: usize = lens.iter().sum();
    if total <= budget {
        return lens.to_vec();
    }
    let mut quotas = vec![0usize; lens.len()];
    let mut remaining = budget;
    while remaining > 0 {
        let mut any = false;
        for (q, &len) in quotas.iter_mut().zip(lens) {
            if *q < len {
                *q += 1;
                remaining -= 1;
                any = true;
                if remaining == 0 {
                    break;
                }
            }
        }
        if !any {
            break;
        }
    }
    quotas
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .field("used_bytes", &self.used_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small() -> Store {
        Store::with_capacity(10 * 1024)
    }

    #[test]
    fn get_set_delete_roundtrip() {
        let s = small();
        assert!(s.get(b"k").is_none());
        s.set("k", "v");
        assert_eq!(s.get(b"k").as_deref(), Some(b"v".as_ref()));
        assert!(s.delete(b"k"));
        assert!(!s.delete(b"k"));
        assert!(s.get(b"k").is_none());
        let st = s.stats();
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 2);
        assert_eq!(st.sets, 1);
        assert_eq!(st.deletes, 1);
    }

    #[test]
    fn overwrite_replaces_value_and_accounting() {
        let s = small();
        s.set("k", vec![0u8; 100]);
        let used1 = s.used_bytes();
        s.set("k", vec![0u8; 10]);
        let used2 = s.used_bytes();
        assert_eq!(s.len(), 1);
        assert_eq!(used1 - used2, 90);
    }

    #[test]
    fn lru_eviction_under_pressure() {
        // Each item: 1-byte key + 1000-byte value + 56 overhead = 1057 B.
        // 10 KiB capacity fits 9 items.
        let s = small();
        for i in 0..20u8 {
            s.set(vec![i], vec![0u8; 1000]);
        }
        assert!(s.len() <= 9);
        assert!(s.used_bytes() <= s.capacity_bytes());
        // The most recent keys survive.
        assert!(s.contains(&[19]));
        assert!(!s.contains(&[0]));
        assert!(s.stats().evictions >= 11);
    }

    #[test]
    fn get_refreshes_recency() {
        let s = small();
        for i in 0..9u8 {
            s.set(vec![i], vec![0u8; 1000]);
        }
        // Touch key 0 so it becomes MRU, then insert to force eviction.
        assert!(s.get(&[0]).is_some());
        s.set(vec![100], vec![0u8; 1000]);
        assert!(s.contains(&[0]), "recently-touched key must survive");
        assert!(!s.contains(&[1]), "LRU key must be evicted");
    }

    #[test]
    fn oversized_items_are_rejected() {
        let s = Store::with_capacity(1000);
        s.set("big", vec![0u8; 5000]);
        assert!(!s.contains(b"big"));
        assert_eq!(s.used_bytes(), 0);
    }

    #[test]
    fn ttl_expiry_counts_as_miss() {
        let s = small();
        s.set_at("k", "v", 100, Some(50));
        assert!(s.get_at(b"k", 120).is_some());
        assert!(s.get_at(b"k", 150).is_none()); // expired exactly at 150
        assert!(!s.contains(b"k"), "expired item is removed");
        let st = s.stats();
        assert_eq!(st.expirations, 1);
    }

    #[test]
    fn clear_empties_everything() {
        let s = small();
        for i in 0..5u8 {
            s.set(vec![i], "v");
        }
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.used_bytes(), 0);
        // Store remains usable.
        s.set("x", "y");
        assert!(s.contains(b"x"));
    }

    #[test]
    fn sharding_distributes_keys() {
        let s = Store::new(StoreConfig {
            capacity_bytes: 1 << 20,
            shards: 8,
        });
        for i in 0..1000u32 {
            s.set(i.to_be_bytes().to_vec(), "v");
        }
        assert_eq!(s.len(), 1000);
        let occupied = s
            .shards
            .iter()
            .filter(|sh| !sh.lock().map.is_empty())
            .count();
        assert!(
            occupied >= 6,
            "keys should spread over shards, got {occupied}"
        );
    }

    #[test]
    fn hit_rate_math() {
        let s = small();
        s.set("a", "1");
        s.get(b"a");
        s.get(b"a");
        s.get(b"nope");
        assert!((s.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn get_many_matches_sequential_gets() {
        let s = Store::new(StoreConfig {
            capacity_bytes: 1 << 20,
            shards: 4,
        });
        let t = Store::new(StoreConfig {
            capacity_bytes: 1 << 20,
            shards: 4,
        });
        for i in 0..64u32 {
            if i % 3 != 0 {
                s.set_at(i.to_be_bytes().to_vec(), "v", 0, Some(100));
                t.set_at(i.to_be_bytes().to_vec(), "v", 0, Some(100));
            }
        }
        let keys: Vec<Vec<u8>> = (0..64u32).map(|i| i.to_be_bytes().to_vec()).collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let batched = s.get_many(&refs, 50);
        let sequential: Vec<Option<Bytes>> = refs.iter().map(|k| t.get_at(k, 50)).collect();
        assert_eq!(batched, sequential);
        assert_eq!(s.stats(), t.stats(), "batched stats must match sequential");
        // Expired items behave identically too (TTL 100 at t=200).
        let batched = s.get_many(&refs, 200);
        assert!(batched.iter().all(|v| v.is_none()));
        assert_eq!(s.stats(), {
            refs.iter().for_each(|k| {
                t.get_at(k, 200);
            });
            t.stats()
        });
    }

    #[test]
    fn set_many_groups_by_shard_and_preserves_order() {
        let s = Store::new(StoreConfig {
            capacity_bytes: 1 << 20,
            shards: 4,
        });
        // Two writes to the same key in one batch: last one wins, exactly
        // as with sequential sets.
        let items = vec![
            (
                Bytes::copy_from_slice(b"dup"),
                Bytes::copy_from_slice(b"first"),
                None,
            ),
            (
                Bytes::copy_from_slice(b"a"),
                Bytes::copy_from_slice(b"1"),
                None,
            ),
            (
                Bytes::copy_from_slice(b"b"),
                Bytes::copy_from_slice(b"2"),
                Some(10),
            ),
            (
                Bytes::copy_from_slice(b"dup"),
                Bytes::copy_from_slice(b"last"),
                None,
            ),
        ];
        let stored = s.set_many_at(items, 0);
        assert_eq!(stored, 4);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(b"dup").as_deref(), Some(b"last".as_ref()));
        assert!(
            s.get_at(b"b", 11).is_none(),
            "TTL applies through the batch"
        );
        assert_eq!(s.stats().sets, 4);
    }

    #[test]
    fn set_policy_single_lock_semantics() {
        let s = small();
        assert_eq!(
            s.set_policy_at("k", "a", 0, None, SetPolicy::IfPresent),
            SetOutcome::NotStored
        );
        assert_eq!(
            s.set_policy_at("k", "a", 0, None, SetPolicy::IfAbsent),
            SetOutcome::Stored
        );
        assert_eq!(
            s.set_policy_at("k", "b", 0, None, SetPolicy::IfAbsent),
            SetOutcome::NotStored
        );
        assert_eq!(
            s.set_policy_at("k", "c", 0, None, SetPolicy::IfPresent),
            SetOutcome::Stored
        );
        assert_eq!(s.get(b"k").as_deref(), Some(b"c".as_ref()));
        let tiny = Store::with_capacity(128);
        assert_eq!(
            tiny.set_policy_at("big", vec![0u8; 500], 0, None, SetPolicy::Always),
            SetOutcome::TooLarge
        );
        assert!(!tiny.contains(b"big"));
    }

    #[test]
    fn snapshot_is_one_sweep_view() {
        let s = small();
        s.set("a", "1");
        s.set("b", "22");
        s.get(b"a");
        s.get(b"missing");
        s.delete(b"b");
        let snap = s.snapshot();
        assert_eq!(snap.stats, s.stats());
        assert_eq!(snap.used_bytes, s.used_bytes());
        assert_eq!(snap.capacity_bytes, s.capacity_bytes());
        assert_eq!(snap.items, s.len());
        assert_eq!(snap.stats.deletes, 1);
    }

    proptest! {
        /// Accounting invariants hold under arbitrary operation sequences:
        /// used_bytes matches the sum over live items and never exceeds
        /// capacity.
        #[test]
        fn accounting_invariants(ops in proptest::collection::vec(
            (0u8..3, 0u16..50, 0usize..2000), 1..300)) {
            let s = Store::new(StoreConfig { capacity_bytes: 64 * 1024, shards: 4 });
            for (op, key, size) in ops {
                let k = key.to_be_bytes().to_vec();
                match op {
                    0 => s.set(k, vec![0u8; size]),
                    1 => { s.get(&k); }
                    _ => { s.delete(&k); }
                }
                prop_assert!(s.used_bytes() <= s.capacity_bytes());
            }
            // Recompute used from scratch via per-item sizes.
            let mut expect = 0usize;
            for sh in &s.shards {
                let sh = sh.lock();
                for (k, e) in &sh.map {
                    expect += k.len() + e.value.len() + ITEM_OVERHEAD;
                    prop_assert_eq!(e.bytes, k.len() + e.value.len() + ITEM_OVERHEAD);
                }
                prop_assert_eq!(sh.lru.len(), sh.map.len());
            }
            prop_assert_eq!(s.used_bytes(), expect);
        }
    }
}
