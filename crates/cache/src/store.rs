//! A sharded LRU key-value store with byte-accurate memory accounting.
//!
//! Mirrors the memcached behaviours the paper's evaluation depends on:
//! least-recently-used eviction under a memory budget, get/set/delete,
//! optional TTLs (against a caller-supplied logical clock so simulations
//! stay deterministic), and hit/miss/eviction counters.
//!
//! # Read-path concurrency
//!
//! Steady-state GETs take only a **shared** lock. Each shard is an
//! `RwLock<ShardData>`: a reader looks its key up under the read lock and,
//! on a hit, records recency by pushing a `(lru_idx, lru_gen)` record into
//! one of the shard's lock-free [touch rings](crate::touch) instead of
//! moving the LRU node inline. The rings are drained **in batches under
//! the write lock** — opportunistically by every writer before its own
//! mutation, and by the explicit [`Store::flush_touches`] hook the data
//! planes call between event batches. TTL expiry is driven by a per-shard
//! [hierarchical timer wheel](crate::wheel) advanced on the same flush
//! cadence, so expired entries stop occupying LRU slots and memory without
//! waiting for an unlucky GET.
//!
//! The **approximation contract** (see DESIGN.md §"Read-path
//! concurrency"): a touch may be applied late, but touches from one worker
//! thread are never reordered against each other, and eviction victims are
//! always drawn from the true LRU tail *modulo unflushed touches*. Every
//! writer flushes before mutating, so any single-threaded sequence of
//! operations is byte-identical to the legacy inline plane
//! ([`ReadPath::Inline`], kept as the reference baseline).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use spotcache_obs::{Counter, Gauge, Obs, Tracer};

use crate::lru::LruList;
use crate::touch::{lane_for_thread, TouchRec, TouchRing};
use crate::wheel::{TimerWheel, WheelRec};

/// A sink for store mutations, installed with [`Store::set_mutation_sink`].
///
/// The replication stream ([`crate::replication`]) implements this to tail
/// hot-key writes into its bounded queue. Callbacks run on the mutating
/// thread **after** the shard lock is released, so a sink may take its own
/// locks but must stay cheap — it sits on the data plane's write path.
pub trait MutationSink: Send + Sync {
    /// A key was stored (the value is the raw stored bytes, including the
    /// protocol's flag prefix when the write came through the protocol
    /// layer). `ttl` is the relative TTL the writer supplied, if any.
    fn on_set(&self, key: &Bytes, raw_value: &Bytes, ttl: Option<u64>);

    /// A key was deleted (only called when the key existed).
    fn on_delete(&self, key: &[u8]);
}

/// Fixed per-item metadata overhead we account alongside key+value bytes
/// (memcached's item header is ~48-56 bytes; we use a round number).
pub const ITEM_OVERHEAD: usize = 56;

/// Store construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Memory budget across all shards, bytes.
    pub capacity_bytes: usize,
    /// Number of shards (each with its own lock); clamped to at least 1.
    pub shards: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            capacity_bytes: 64 << 20,
            shards: 8,
        }
    }
}

/// Which concurrency plane steady-state GETs use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPath {
    /// Legacy plane: every GET takes the shard's exclusive lock and moves
    /// the entry in the LRU inline. Kept as the frozen reference plane the
    /// equivalence proptests compare against (and as the baseline leg of
    /// the hot-shard benchmark).
    Inline,
    /// Shared-lock plane (default): GETs take the read lock and record
    /// recency into per-worker touch rings; writers and the explicit
    /// [`Store::flush_touches`] hook apply them in batches.
    Deferred,
}

/// Tuning knobs for the deferred read path.
#[derive(Debug, Clone, Copy)]
pub struct ReadPathConfig {
    /// Which plane GETs use.
    pub mode: ReadPath,
    /// Touch-ring lanes per shard. Sized to the worker-thread count so
    /// each data-plane worker gets a private SPSC lane; extra threads wrap
    /// around and share (still safe — the rings are MPMC).
    pub lanes: usize,
    /// Capacity of each lane in records (rounded up to a power of two).
    /// Overflow drops the **oldest** record: a hot key briefly looks
    /// colder, never a correctness issue.
    pub lane_capacity: usize,
}

impl Default for ReadPathConfig {
    fn default() -> Self {
        Self {
            mode: ReadPath::Deferred,
            lanes: 8,
            lane_capacity: 512,
        }
    }
}

/// What one touch-flush sweep accomplished (summed over the swept shards).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushReport {
    /// Touch records drained from the rings.
    pub drained: u64,
    /// Records applied to the LRU (post-dedupe, generation-valid).
    pub applied: u64,
    /// Records dropped as stale (slot freed or reused since the read).
    pub stale: u64,
    /// Entries reaped by the TTL wheel.
    pub expired: u64,
}

impl FlushReport {
    fn add(&mut self, other: &FlushReport) {
        self.drained += other.drained;
        self.applied += other.applied;
        self.stale += other.stale;
        self.expired += other.expired;
    }

    /// Whether the sweep did any work at all.
    pub fn any(&self) -> bool {
        self.drained != 0 || self.expired != 0
    }
}

/// Cumulative statistics, aggregated across shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Successful gets.
    pub hits: u64,
    /// Gets that found nothing (or an expired item).
    pub misses: u64,
    /// Items evicted by the LRU policy.
    pub evictions: u64,
    /// Set operations.
    pub sets: u64,
    /// Delete operations that removed something.
    pub deletes: u64,
    /// Items removed past their TTL (reaped by the wheel, purged by a
    /// write-path presence check, or — on the inline plane — removed by an
    /// unlucky GET).
    pub expirations: u64,
}

impl CacheStats {
    /// Hit rate over all gets; 0 when no gets happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn add(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.sets += other.sets;
        self.deletes += other.deletes;
        self.expirations += other.expirations;
    }
}

/// Conditional-store semantics for [`Store::set_policy_at`] (the store-side
/// counterpart of the protocol's `set`/`add`/`replace` verbs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetPolicy {
    /// Store unconditionally (`set`).
    Always,
    /// Store only when the key is absent (`add`).
    IfAbsent,
    /// Store only when the key is present (`replace`).
    IfPresent,
}

/// Outcome of a policy-checked store operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOutcome {
    /// The item was stored.
    Stored,
    /// The policy rejected the store (key presence didn't match).
    NotStored,
    /// The item exceeds the shard budget and was rejected (any previous
    /// value under the key is gone, mirroring memcached's oversized-item
    /// behaviour).
    TooLarge,
}

/// One-sweep aggregate view of the store: statistics, occupancy, and
/// capacity gathered with a single pass over the shard locks.
///
/// Observability samplers should prefer one [`Store::snapshot_at`] call
/// over separate `stats()` / `used_bytes()` / `len()` calls — each of
/// those is itself a full sweep, so naive per-field sampling quadruples
/// lock traffic on the hot shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreSnapshot {
    /// Cumulative operation statistics.
    pub stats: CacheStats,
    /// Bytes accounted to live items (keys + values + overhead).
    pub used_bytes: usize,
    /// Total capacity across shards.
    pub capacity_bytes: usize,
    /// Number of live items.
    pub items: usize,
}

struct Entry {
    value: Bytes,
    lru_idx: usize,
    /// Generation of the LRU slot at insert time; touch and wheel records
    /// carry it so a record can never act on a freed-and-reused slot.
    lru_gen: u32,
    bytes: usize,
    expires_at: Option<u64>,
}

/// FNV-1a with a splitmix64-style finalizer: the shard maps' key hasher.
/// Cache keys are short (tens of bytes), where FNV beats the std maps'
/// SipHash by ~100 ns per lookup — pure win on the GET hot path, which
/// pays a map probe on every operation.
///
/// The finalizer is load-bearing, not decoration: shard selection already
/// uses raw FNV (`Store::shard_idx`), so every key inside one shard agrees
/// on `fnv(key) % shards`. Without a final bit-mix the map's bucket index
/// would inherit that congruence and cluster probes by the shard count.
/// This is not a DoS-hardened hash; a cache whose keyspace is attacker-
/// controlled already concedes collision-flood behaviour at the shard
/// selector, which no map hasher can repair.
struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for FnvHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }

    #[inline]
    fn finish(&self) -> u64 {
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

type KeyMap = HashMap<Bytes, Entry, std::hash::BuildHasherDefault<FnvHasher>>;

/// Everything behind a shard's `RwLock`: the map, the LRU, the TTL wheel,
/// and the reusable flush scratch (kept here so steady-state flushes
/// allocate nothing — see `tests/zero_alloc.rs`).
struct ShardData {
    map: KeyMap,
    lru: LruList<Bytes>,
    used_bytes: usize,
    capacity_bytes: usize,
    /// Write-side statistics. `hits`/`misses` are **always zero** here —
    /// they live in the shard's lock-free atomics so the shared-lock read
    /// path never writes under the lock.
    wstats: CacheStats,
    wheel: TimerWheel,
    /// Whether TTL'd inserts are filed into the wheel (the deferred plane
    /// only; the inline plane keeps the legacy lazy-expiry-on-GET).
    wheel_enabled: bool,
    drain_buf: Vec<TouchRec>,
    keep_buf: Vec<TouchRec>,
    /// Per-LRU-slot epoch stamps for the flush dedupe pass.
    seen_epoch: Vec<u32>,
    epoch: u32,
    due_buf: Vec<(u32, u32)>,
}

impl ShardData {
    fn new(capacity_bytes: usize, wheel_enabled: bool) -> Self {
        Self {
            map: KeyMap::default(),
            lru: LruList::new(),
            used_bytes: 0,
            capacity_bytes,
            wstats: CacheStats::default(),
            wheel: TimerWheel::new(),
            wheel_enabled,
            drain_buf: Vec::new(),
            keep_buf: Vec::new(),
            seen_epoch: Vec::new(),
            epoch: 0,
            due_buf: Vec::new(),
        }
    }

    fn entry_expired(e: &Entry, now: u64) -> bool {
        e.expires_at.is_some_and(|t| t <= now)
    }

    /// Removes a key that is known to be present.
    fn remove_present(&mut self, key: &[u8]) {
        let e = self.map.remove(key).expect("caller checked presence");
        self.lru.remove(e.lru_idx);
        self.used_bytes -= e.bytes;
    }

    /// Applies a policy-checked store under the one lock the caller holds:
    /// presence check and insertion are a single critical section.
    ///
    /// An expired-but-unreaped entry does **not** satisfy the presence
    /// check: it is purged first (counted as an expiration), so `add`
    /// succeeds and `replace` fails exactly as if the reaper had already
    /// run. (Before PR 8 presence ignored TTLs; that was the
    /// `contains()`-counts-expired bug.)
    fn apply(
        &mut self,
        policy: SetPolicy,
        key: Bytes,
        value: Bytes,
        now: u64,
        ttl: Option<u64>,
    ) -> SetOutcome {
        if self
            .map
            .get(&key)
            .is_some_and(|e| Self::entry_expired(e, now))
        {
            self.remove_present(&key);
            self.wstats.expirations += 1;
        }
        let exists = self.map.contains_key(&key);
        let store_it = match policy {
            SetPolicy::Always => true,
            SetPolicy::IfAbsent => !exists,
            SetPolicy::IfPresent => exists,
        };
        if !store_it {
            return SetOutcome::NotStored;
        }
        if self.set(key, value, now, ttl) {
            SetOutcome::Stored
        } else {
            SetOutcome::TooLarge
        }
    }

    /// Inserts an item; returns `false` when it exceeds the shard budget
    /// (the item is rejected and any previous value is removed).
    fn set(&mut self, key: Bytes, value: Bytes, now: u64, ttl: Option<u64>) -> bool {
        self.wstats.sets += 1;
        let bytes = key.len() + value.len() + ITEM_OVERHEAD;
        if let Some(old) = self.map.remove(&key) {
            self.lru.remove(old.lru_idx);
            self.used_bytes -= old.bytes;
        }
        // memcached rejects items larger than the slab limit; we reject
        // items larger than the whole shard the same way (silently dropping
        // would corrupt accounting; callers can check `contains`).
        if bytes > self.capacity_bytes {
            return false;
        }
        while self.used_bytes + bytes > self.capacity_bytes {
            let victim = self.lru.pop_back().expect("used > 0 implies non-empty LRU");
            let old = self.map.remove(&victim).expect("LRU entry is in the map");
            self.used_bytes -= old.bytes;
            self.wstats.evictions += 1;
        }
        let idx = self.lru.push_front(key.clone());
        debug_assert!(
            idx <= u32::MAX as usize,
            "ITEM_OVERHEAD bounds the slab below 2^32"
        );
        let gen = self.lru.gen_of(idx);
        let expires_at = ttl.map(|d| now + d);
        if self.wheel_enabled {
            if let Some(e) = expires_at {
                self.wheel.insert(WheelRec {
                    expires_at: e,
                    idx: idx as u32,
                    gen,
                });
            }
        }
        self.map.insert(
            key,
            Entry {
                value,
                lru_idx: idx,
                lru_gen: gen,
                bytes,
                expires_at,
            },
        );
        self.used_bytes += bytes;
        true
    }
}

/// One shard: the locked data plus everything readers may touch without
/// the write lock — the touch-ring lanes and the lock-free counters.
struct Shard {
    data: RwLock<ShardData>,
    /// Per-worker touch lanes (empty on the inline plane).
    lanes: Vec<TouchRing>,
    hits: AtomicU64,
    misses: AtomicU64,
    rlock_gets: AtomicU64,
    wlock_gets: AtomicU64,
    touch_drops: AtomicU64,
    flush_batches: AtomicU64,
    flush_records: AtomicU64,
    flush_applied: AtomicU64,
    flush_stale: AtomicU64,
    wheel_advances: AtomicU64,
    wheel_expired: AtomicU64,
    wheel_pending: AtomicU64,
    /// Lower bound on the wheel's earliest pending deadline
    /// (`u64::MAX` = empty), mirrored from under the write lock so
    /// [`Store::flush_touches`] can skip shards with nothing to reap.
    wheel_next: AtomicU64,
}

impl Shard {
    fn new(capacity_bytes: usize, rp: &ReadPathConfig) -> Self {
        let deferred = rp.mode == ReadPath::Deferred;
        let lanes = if deferred {
            (0..rp.lanes.max(1))
                .map(|_| TouchRing::new(rp.lane_capacity))
                .collect()
        } else {
            Vec::new()
        };
        Self {
            data: RwLock::new(ShardData::new(capacity_bytes, deferred)),
            lanes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rlock_gets: AtomicU64::new(0),
            wlock_gets: AtomicU64::new(0),
            touch_drops: AtomicU64::new(0),
            flush_batches: AtomicU64::new(0),
            flush_records: AtomicU64::new(0),
            flush_applied: AtomicU64::new(0),
            flush_stale: AtomicU64::new(0),
            wheel_advances: AtomicU64::new(0),
            wheel_expired: AtomicU64::new(0),
            wheel_pending: AtomicU64::new(0),
            wheel_next: AtomicU64::new(u64::MAX),
        }
    }

    /// Shared-lock GET: lookup + expiry check + a touch-ring push. Never
    /// mutates `ShardData`; an expired entry simply serves a miss (the
    /// wheel reaps it on the flush cadence).
    fn get_shared(&self, d: &ShardData, key: &[u8], now: u64, lane: usize) -> Option<Bytes> {
        self.rlock_gets.fetch_add(1, Ordering::Relaxed);
        match d.map.get(key) {
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Some(e) if ShardData::entry_expired(e, now) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Some(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                let dropped = self.lanes[lane].push_drop_oldest(TouchRec {
                    idx: e.lru_idx as u32,
                    gen: e.lru_gen,
                });
                if dropped {
                    self.touch_drops.fetch_add(1, Ordering::Relaxed);
                }
                Some(e.value.clone())
            }
        }
    }

    /// Exclusive-lock GET (inline plane): the legacy behaviour — touch the
    /// LRU inline, remove an expired entry on collision.
    fn get_exclusive(&self, d: &mut ShardData, key: &[u8], now: u64) -> Option<Bytes> {
        self.wlock_gets.fetch_add(1, Ordering::Relaxed);
        let expired = match d.map.get(key) {
            Some(e) => ShardData::entry_expired(e, now),
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        if expired {
            d.remove_present(key);
            d.wstats.expirations += 1;
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let e = d.map.get(key).expect("checked above");
        let (idx, value) = (e.lru_idx, e.value.clone());
        d.lru.touch(idx);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(value)
    }

    /// Runs a mutation under the write lock, flushing pending touches and
    /// advancing the TTL wheel **first** (so the mutation sees exact LRU
    /// order and reaped-at-`now` occupancy), and republishing the wheel's
    /// next deadline after.
    fn write_op<R>(&self, now: u64, f: impl FnOnce(&mut ShardData) -> R) -> R {
        let mut d = self.data.write();
        self.flush_locked(&mut d, now);
        let r = f(&mut d);
        self.publish_wheel(&d);
        r
    }

    fn publish_wheel(&self, d: &ShardData) {
        self.wheel_next.store(
            d.wheel.next_deadline().unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        self.wheel_pending
            .store(d.wheel.len() as u64, Ordering::Relaxed);
    }

    /// Drains every touch lane, dedupes, applies the survivors to the LRU,
    /// then advances the TTL wheel to `now` and reaps what's due. All
    /// scratch lives in `ShardData`, so the steady state allocates nothing.
    fn flush_locked(&self, d: &mut ShardData, now: u64) -> FlushReport {
        let mut rep = FlushReport::default();
        if !self.lanes.is_empty() {
            let mut drain = std::mem::take(&mut d.drain_buf);
            drain.clear();
            for lane in &self.lanes {
                while let Some(t) = lane.pop() {
                    drain.push(t);
                }
            }
            if !drain.is_empty() {
                rep.drained = drain.len() as u64;
                // Dedupe: only the *last* touch of each slot decides its
                // final LRU position, so scan newest-to-oldest keeping the
                // first occurrence per slot (epoch stamps avoid clearing
                // the seen-array between flushes), then apply the keepers
                // oldest-to-newest. The result is byte-identical to
                // replaying every record in order.
                if d.seen_epoch.len() < d.lru.slot_capacity() {
                    let cap = d.lru.slot_capacity();
                    d.seen_epoch.resize(cap, 0);
                }
                d.epoch = d.epoch.wrapping_add(1);
                if d.epoch == 0 {
                    d.seen_epoch.fill(0);
                    d.epoch = 1;
                }
                let epoch = d.epoch;
                let mut keep = std::mem::take(&mut d.keep_buf);
                keep.clear();
                for t in drain.iter().rev() {
                    match d.seen_epoch.get_mut(t.idx as usize) {
                        Some(s) if *s != epoch => {
                            *s = epoch;
                            keep.push(*t);
                        }
                        Some(_) => rep.stale += 1, // superseded by a newer touch
                        None => rep.stale += 1,    // out-of-range: long dead
                    }
                }
                for t in keep.iter().rev() {
                    if d.lru.touch_if(t.idx as usize, t.gen) {
                        rep.applied += 1;
                    } else {
                        rep.stale += 1;
                    }
                }
                d.keep_buf = keep;
            }
            d.drain_buf = drain;
        }
        if d.wheel_enabled && d.wheel.next_deadline().is_some_and(|t| t <= now) {
            let mut due = std::mem::take(&mut d.due_buf);
            due.clear();
            d.wheel.advance(now, &mut due);
            self.wheel_advances.fetch_add(1, Ordering::Relaxed);
            for &(idx, gen) in due.iter() {
                // A live generation match means the exact entry this record
                // was filed for is still in place (any overwrite or delete
                // bumps the slot generation) — reap it.
                if d.lru.is_live_gen(idx as usize, gen) {
                    let key = d.lru.payload(idx as usize).cloned().expect("live slot");
                    d.remove_present(&key);
                    d.wstats.expirations += 1;
                    rep.expired += 1;
                }
            }
            d.due_buf = due;
        }
        if rep.any() {
            self.flush_batches.fetch_add(1, Ordering::Relaxed);
            self.flush_records.fetch_add(rep.drained, Ordering::Relaxed);
            self.flush_applied.fetch_add(rep.applied, Ordering::Relaxed);
            self.flush_stale.fetch_add(rep.stale, Ordering::Relaxed);
            self.wheel_expired.fetch_add(rep.expired, Ordering::Relaxed);
        }
        rep
    }
}

/// `store_*` / `ttl_wheel_*` observability wiring. The hot path only ever
/// touches the per-shard atomics; this struct is the bridge that adds
/// their **deltas** into the obs registry at flush/snapshot time.
struct StoreTelemetry {
    rlock_gets: Counter,
    wlock_gets: Counter,
    touch_dropped: Counter,
    flush_total: Counter,
    flush_records: Counter,
    flush_applied: Counter,
    flush_stale: Counter,
    wheel_advances: Counter,
    wheel_expired: Counter,
    wheel_pending: Gauge,
    tracer: Option<Arc<Tracer>>,
    /// Totals already pushed into the counters, so each sync adds only the
    /// delta. One mutex, taken on the flush cadence — never per-GET.
    synced: Mutex<[u64; 9]>,
}

impl StoreTelemetry {
    fn new(obs: &Obs, tracer: Option<Arc<Tracer>>) -> Self {
        Self {
            rlock_gets: obs.counter("store_rlock_gets_total"),
            wlock_gets: obs.counter("store_wlock_gets_total"),
            touch_dropped: obs.counter("store_touch_dropped_total"),
            flush_total: obs.counter("store_touch_flush_total"),
            flush_records: obs.counter("store_touch_flush_records_total"),
            flush_applied: obs.counter("store_touch_flush_applied_total"),
            flush_stale: obs.counter("store_touch_flush_stale_total"),
            wheel_advances: obs.counter("ttl_wheel_advances_total"),
            wheel_expired: obs.counter("ttl_wheel_expired_total"),
            wheel_pending: obs.gauge("ttl_wheel_pending"),
            tracer,
            synced: Mutex::new([0; 9]),
        }
    }

    fn sync(&self, shards: &[Shard]) {
        let mut totals = [0u64; 9];
        let mut pending = 0u64;
        for sh in shards {
            totals[0] += sh.rlock_gets.load(Ordering::Relaxed);
            totals[1] += sh.wlock_gets.load(Ordering::Relaxed);
            totals[2] += sh.touch_drops.load(Ordering::Relaxed);
            totals[3] += sh.flush_batches.load(Ordering::Relaxed);
            totals[4] += sh.flush_records.load(Ordering::Relaxed);
            totals[5] += sh.flush_applied.load(Ordering::Relaxed);
            totals[6] += sh.flush_stale.load(Ordering::Relaxed);
            totals[7] += sh.wheel_advances.load(Ordering::Relaxed);
            totals[8] += sh.wheel_expired.load(Ordering::Relaxed);
            pending += sh.wheel_pending.load(Ordering::Relaxed);
        }
        let mut last = self.synced.lock();
        let counters = [
            &self.rlock_gets,
            &self.wlock_gets,
            &self.touch_dropped,
            &self.flush_total,
            &self.flush_records,
            &self.flush_applied,
            &self.flush_stale,
            &self.wheel_advances,
            &self.wheel_expired,
        ];
        for (i, c) in counters.iter().enumerate() {
            c.add(totals[i].saturating_sub(last[i]));
        }
        *last = totals;
        drop(last);
        self.wheel_pending.set(pending as f64);
    }
}

/// A sharded LRU store.
///
/// Capacity is split evenly across shards, matching memcached's per-slab
/// independence: a hot shard can evict while another has room. See the
/// [module docs](crate::store) for the read-path concurrency model.
///
/// # Examples
///
/// ```
/// use spotcache_cache::store::Store;
///
/// let store = Store::with_capacity(1 << 20);
/// store.set("user:1", "alice");
/// assert_eq!(store.get(b"user:1").as_deref(), Some(b"alice".as_ref()));
/// assert!(store.delete(b"user:1"));
/// ```
pub struct Store {
    shards: Vec<Shard>,
    read_path: ReadPathConfig,
    /// Optional mutation tap (replication). Read-locked per write; writes
    /// are rare (installation at topology changes), so the read path is an
    /// uncontended `RwLock` read.
    sink: RwLock<Option<Arc<dyn MutationSink>>>,
    /// Optional obs wiring; absent until [`Store::attach_telemetry`].
    telemetry: RwLock<Option<Arc<StoreTelemetry>>>,
}

thread_local! {
    /// Reusable per-key shard-index scratch for the batched operations, so
    /// steady-state batches allocate nothing.
    static SHARD_SCRATCH: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

impl Store {
    /// Creates a store from a configuration, on the default (deferred,
    /// shared-lock) read path.
    pub fn new(config: StoreConfig) -> Self {
        Self::with_read_path(config, ReadPathConfig::default())
    }

    /// Creates a store with an explicit read-path configuration.
    pub fn with_read_path(config: StoreConfig, read_path: ReadPathConfig) -> Self {
        let n = config.shards.max(1);
        let per_shard = config.capacity_bytes / n;
        Self {
            shards: (0..n).map(|_| Shard::new(per_shard, &read_path)).collect(),
            read_path,
            sink: RwLock::new(None),
            telemetry: RwLock::new(None),
        }
    }

    /// Creates a single-shard store with the given byte budget.
    pub fn with_capacity(capacity_bytes: usize) -> Self {
        Self::new(StoreConfig {
            capacity_bytes,
            shards: 1,
        })
    }

    /// The active read-path configuration.
    pub fn read_path(&self) -> ReadPathConfig {
        self.read_path
    }

    /// Registers the `store_*` / `ttl_wheel_*` metrics with `obs` and
    /// (optionally) a tracer for `store/flush_touches` spans. The hot path
    /// stays on plain per-shard atomics; their values are folded into the
    /// registry on the flush/snapshot cadence.
    pub fn attach_telemetry(&self, obs: &Obs, tracer: Option<Arc<Tracer>>) {
        let t = Arc::new(StoreTelemetry::new(obs, tracer));
        t.sync(&self.shards);
        *self.telemetry.write() = Some(t);
    }

    fn sync_telemetry(&self) {
        if let Some(t) = self.telemetry.read().as_ref() {
            t.sync(&self.shards);
        }
    }

    /// Installs (or removes, with `None`) the mutation tap. Subsequent
    /// successful sets and deletes are reported to the sink; in-flight
    /// operations on other threads may still miss it for one operation.
    pub fn set_mutation_sink(&self, sink: Option<Arc<dyn MutationSink>>) {
        *self.sink.write() = sink;
    }

    #[inline]
    fn tap_set(&self, key: &Bytes, value: &Bytes, ttl: Option<u64>) {
        if let Some(s) = self.sink.read().as_ref() {
            s.on_set(key, value, ttl);
        }
    }

    #[inline]
    fn tap_delete(&self, key: &[u8]) {
        if let Some(s) = self.sink.read().as_ref() {
            s.on_delete(key);
        }
    }

    #[inline]
    fn sink_installed(&self) -> bool {
        self.sink.read().is_some()
    }

    fn shard_idx(&self, key: &[u8]) -> usize {
        // FNV-1a; cheap and adequate for shard selection.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }

    fn shard_for(&self, key: &[u8]) -> &Shard {
        &self.shards[self.shard_idx(key)]
    }

    #[inline]
    fn deferred(&self) -> bool {
        self.read_path.mode == ReadPath::Deferred
    }

    /// Fetches a key at logical time `now` (TTL-aware). On the deferred
    /// plane this takes only the shard's **read** lock.
    pub fn get_at(&self, key: &[u8], now: u64) -> Option<Bytes> {
        let sh = self.shard_for(key);
        if self.deferred() {
            let lane = lane_for_thread(sh.lanes.len());
            let d = sh.data.read();
            sh.get_shared(&d, key, now, lane)
        } else {
            let mut d = sh.data.write();
            sh.get_exclusive(&mut d, key, now)
        }
    }

    /// Fetches a key, ignoring TTLs (logical time 0).
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        self.get_at(key, 0)
    }

    /// Batched fetch: looks up every key of a pipelined batch, grouping
    /// keys by shard so each shard lock is taken **once per batch** rather
    /// than once per key. Results land in `out` (cleared first) in input
    /// order; values are refcounted [`Bytes`] clones, so the bytes stay
    /// zero-copy until a response writer serializes them.
    ///
    /// Within a shard, keys are processed in input order, so hit/miss
    /// accounting, TTL behaviour, and recency order are identical to
    /// issuing the gets one at a time. On the deferred plane the per-shard
    /// lock taken is the **read** lock.
    pub fn get_many_into<'k, K>(&self, keys: K, now: u64, out: &mut Vec<Option<Bytes>>)
    where
        K: Iterator<Item = &'k [u8]> + Clone,
    {
        out.clear();
        let deferred = self.deferred();
        let lane = if deferred {
            lane_for_thread(self.read_path.lanes.max(1))
        } else {
            0
        };
        if self.shards.len() == 1 {
            let sh = &self.shards[0];
            if deferred {
                let d = sh.data.read();
                for k in keys {
                    out.push(sh.get_shared(&d, k, now, lane));
                }
            } else {
                let mut d = sh.data.write();
                for k in keys {
                    out.push(sh.get_exclusive(&mut d, k, now));
                }
            }
            return;
        }
        let mut ids = SHARD_SCRATCH.with(|s| std::mem::take(&mut *s.borrow_mut()));
        ids.clear();
        let mut n = 0usize;
        for k in keys.clone() {
            ids.push(self.shard_idx(k) as u32);
            n += 1;
        }
        out.resize_with(n, || None);
        for s in 0..self.shards.len() as u32 {
            if !ids.contains(&s) {
                continue;
            }
            let sh = &self.shards[s as usize];
            if deferred {
                let d = sh.data.read();
                for ((i, k), &id) in keys.clone().enumerate().zip(ids.iter()) {
                    if id == s {
                        out[i] = sh.get_shared(&d, k, now, lane);
                    }
                }
            } else {
                let mut d = sh.data.write();
                for ((i, k), &id) in keys.clone().enumerate().zip(ids.iter()) {
                    if id == s {
                        out[i] = sh.get_exclusive(&mut d, k, now);
                    }
                }
            }
        }
        SHARD_SCRATCH.with(|s| *s.borrow_mut() = ids);
    }

    /// [`get_many_into`](Self::get_many_into) into a fresh vector.
    pub fn get_many(&self, keys: &[&[u8]], now: u64) -> Vec<Option<Bytes>> {
        let mut out = Vec::with_capacity(keys.len());
        self.get_many_into(keys.iter().copied(), now, &mut out);
        out
    }

    /// Drains every shard's touch rings and advances every TTL wheel to
    /// `now`, under each shard's write lock in turn. The data planes call
    /// this between event batches; shards with empty rings and no due
    /// wheel deadline are skipped without taking the lock.
    pub fn flush_touches(&self, now: u64) -> FlushReport {
        let mut total = FlushReport::default();
        if !self.deferred() {
            return total;
        }
        let telemetry = self.telemetry.read().clone();
        let _span = telemetry
            .as_ref()
            .and_then(|t| t.tracer.as_ref())
            .map(|t| t.span("store", "flush_touches"));
        for sh in &self.shards {
            let rings_idle = sh.lanes.iter().all(|l| l.is_empty());
            let wheel_due = sh.wheel_next.load(Ordering::Relaxed) <= now;
            if rings_idle && !wheel_due {
                continue;
            }
            let mut d = sh.data.write();
            let rep = sh.flush_locked(&mut d, now);
            sh.publish_wheel(&d);
            total.add(&rep);
        }
        if let Some(t) = &telemetry {
            t.sync(&self.shards);
        }
        total
    }

    /// Batched insert: stores every `(key, value, ttl)` item, grouping by
    /// shard and taking each shard lock once per batch. Items mapping to
    /// the same shard are applied in input order, so the final state
    /// matches sequential `set_at` calls. Returns how many items were
    /// stored (an item is rejected only when it exceeds its shard budget).
    pub fn set_many_at(&self, items: Vec<(Bytes, Bytes, Option<u64>)>, now: u64) -> usize {
        // The tap fires outside the shard locks; stored items are staged
        // only when a sink is installed (refcount clones, no byte copies).
        let tapping = self.sink_installed();
        let mut tapped: Vec<(Bytes, Bytes, Option<u64>)> = Vec::new();
        let mut stored = 0usize;
        if self.shards.len() == 1 {
            let sh = &self.shards[0];
            stored = sh.write_op(now, |d| {
                let mut stored = 0usize;
                for (k, v, ttl) in items {
                    let ok = d.set(k.clone(), v.clone(), now, ttl);
                    if ok && tapping {
                        tapped.push((k, v, ttl));
                    }
                    stored += ok as usize;
                }
                stored
            });
            for (k, v, ttl) in &tapped {
                self.tap_set(k, v, *ttl);
            }
            return stored;
        }
        let ids: Vec<u32> = items
            .iter()
            .map(|(k, _, _)| self.shard_idx(k) as u32)
            .collect();
        let mut slots: Vec<Option<(Bytes, Bytes, Option<u64>)>> =
            items.into_iter().map(Some).collect();
        for s in 0..self.shards.len() as u32 {
            if !ids.contains(&s) {
                continue;
            }
            let sh = &self.shards[s as usize];
            stored += sh.write_op(now, |d| {
                let mut stored = 0usize;
                for (slot, &id) in slots.iter_mut().zip(ids.iter()) {
                    if id == s {
                        let (k, v, ttl) = slot.take().expect("each slot is taken exactly once");
                        let ok = d.set(k.clone(), v.clone(), now, ttl);
                        if ok && tapping {
                            tapped.push((k, v, ttl));
                        }
                        stored += ok as usize;
                    }
                }
                stored
            });
        }
        for (k, v, ttl) in &tapped {
            self.tap_set(k, v, *ttl);
        }
        stored
    }

    /// Inserts a key with an optional TTL at logical time `now`.
    pub fn set_at(
        &self,
        key: impl Into<Bytes>,
        value: impl Into<Bytes>,
        now: u64,
        ttl: Option<u64>,
    ) {
        self.set_owned(key.into(), value.into(), now, ttl);
    }

    fn set_owned(&self, key: Bytes, value: Bytes, now: u64, ttl: Option<u64>) {
        // `Bytes` clones are refcount bumps; the tap fires after the shard
        // lock is released.
        let stored = self
            .shard_for(&key)
            .write_op(now, |d| d.set(key.clone(), value.clone(), now, ttl));
        if stored {
            self.tap_set(&key, &value, ttl);
        }
    }

    /// Inserts a key with no TTL.
    pub fn set(&self, key: impl Into<Bytes>, value: impl Into<Bytes>) {
        self.set_at(key, value, 0, None);
    }

    /// Policy-checked insert (`set`/`add`/`replace` semantics): the
    /// presence check and the insertion happen under a single shard lock
    /// acquisition, unlike a `contains` + `set_at` + `contains` sequence
    /// which takes the lock three times per command.
    ///
    /// Presence is TTL-aware: an expired-but-unreaped entry is purged
    /// (counted as an expiration) before the check, so `add` treats it as
    /// absent and `replace` as missing — on **both** read planes.
    pub fn set_policy_at(
        &self,
        key: impl Into<Bytes>,
        value: impl Into<Bytes>,
        now: u64,
        ttl: Option<u64>,
        policy: SetPolicy,
    ) -> SetOutcome {
        let key = key.into();
        let value = value.into();
        let out = self.shard_for(&key).write_op(now, |d| {
            d.apply(policy, key.clone(), value.clone(), now, ttl)
        });
        if out == SetOutcome::Stored {
            self.tap_set(&key, &value, ttl);
        }
        out
    }

    /// Deletes a key at logical time `now`; returns whether a **live**
    /// item was removed. An expired-but-unreaped entry is purged but
    /// reported as absent (counted as an expiration, not a delete),
    /// matching memcached's `DELETE` of an expired item.
    pub fn delete_at(&self, key: &[u8], now: u64) -> bool {
        let sh = self.shard_for(key);
        let removed = sh.write_op(now, |d| {
            let expired = match d.map.get(key) {
                None => return false,
                Some(e) => ShardData::entry_expired(e, now),
            };
            d.remove_present(key);
            if expired {
                d.wstats.expirations += 1;
                false
            } else {
                d.wstats.deletes += 1;
                true
            }
        });
        if removed {
            self.tap_delete(key);
        }
        removed
    }

    /// Deletes a key, ignoring TTLs (logical time 0).
    pub fn delete(&self, key: &[u8]) -> bool {
        self.delete_at(key, 0)
    }

    /// Snapshot of live, unexpired items in approximate hottest-first
    /// order, up to `max_items`.
    ///
    /// "Hottest-first" is per-shard LRU recency (most-recently-used first)
    /// with the shards interleaved round-robin — the same
    /// hottest-first-copy order the recovery model assumes for the warm-up
    /// pump, to within shard granularity. Values are the raw stored bytes
    /// (flag prefix included when written through the protocol); the third
    /// element is the TTL remaining at `now`, if any. Pending touches are
    /// flushed first so the walk reflects exact recency; each shard lock
    /// is then held only while that shard is walked.
    ///
    /// Per-shard collection is capped by what the round-robin merge can
    /// actually take (computed from a cheap length pre-pass), so a call
    /// with a tight budget clones ~`max_items` entries total instead of up
    /// to `shards × max_items`; the merge then *moves* the collected items
    /// into the output. When expired-but-unreaped items inflate a shard's
    /// length the caps are approximate and the result may fall slightly
    /// short of `max_items` even though deeper live items exist — within
    /// the "approximate hottest-first" contract.
    pub fn hot_snapshot_at(&self, max_items: usize, now: u64) -> Vec<(Bytes, Bytes, Option<u64>)> {
        if max_items == 0 {
            return Vec::new();
        }
        self.flush_touches(now);
        // Length pre-pass: an upper bound on each shard's live items.
        let lens: Vec<usize> = self
            .shards
            .iter()
            .map(|s| s.data.read().map.len())
            .collect();
        let quotas = round_robin_quotas(&lens, max_items);
        let mut per_shard: Vec<std::vec::IntoIter<(Bytes, Bytes, Option<u64>)>> =
            Vec::with_capacity(self.shards.len());
        let mut collected_total = 0usize;
        for (s, &quota) in self.shards.iter().zip(&quotas) {
            if quota == 0 {
                per_shard.push(Vec::new().into_iter());
                continue;
            }
            let sh = s.data.read();
            let mut items = Vec::with_capacity(quota.min(sh.map.len()));
            for key in sh.lru.iter() {
                if items.len() >= quota {
                    break;
                }
                let Some(e) = sh.map.get(key) else { continue };
                if ShardData::entry_expired(e, now) {
                    continue;
                }
                let ttl = e.expires_at.map(|t| t - now);
                items.push((key.clone(), e.value.clone(), ttl));
            }
            collected_total += items.len();
            per_shard.push(items.into_iter());
        }
        // Round-robin merge: the i-th hottest of every shard before any
        // (i+1)-th, approximating global recency order. Items are moved
        // out of the per-shard vectors, not re-cloned.
        let mut out = Vec::with_capacity(collected_total.min(max_items));
        while out.len() < max_items {
            let mut any = false;
            for items in per_shard.iter_mut() {
                if let Some(item) = items.next() {
                    if out.len() < max_items {
                        out.push(item);
                    }
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        out
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Stable shard index for `key`. Exposed so benchmarks and tests can
    /// construct deliberately skewed key sets (e.g. the single-hot-shard
    /// read-path A/B in `cache_loadgen`).
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.shard_idx(key)
    }

    /// Snapshot of one shard's live, unexpired items in LRU recency order
    /// (most-recently-used first), flushing that shard's pending touches
    /// first and holding only that shard's lock.
    ///
    /// This is the checkpoint writer's walk (`spotcache-recovery`): full
    /// shard state, one framed shard at a time, so peak memory during a
    /// checkpoint is one shard's items rather than the whole store. The
    /// TTL is the remaining TTL at `now`, exactly as
    /// [`hot_snapshot_at`](Self::hot_snapshot_at) reports it.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shard_count()`.
    pub fn shard_snapshot_at(&self, shard: usize, now: u64) -> Vec<(Bytes, Bytes, Option<u64>)> {
        let sh = &self.shards[shard];
        sh.write_op(now, |d| {
            let mut items = Vec::with_capacity(d.map.len());
            for key in d.lru.iter() {
                let Some(e) = d.map.get(key) else { continue };
                if ShardData::entry_expired(e, now) {
                    continue;
                }
                let ttl = e.expires_at.map(|t| t - now);
                items.push((key.clone(), e.value.clone(), ttl));
            }
            items
        })
    }

    /// Whether a key holds a live (unexpired at `now`) item. Takes only
    /// the shard's read lock; never mutates, touches LRU order, or counts
    /// stats.
    pub fn contains_at(&self, key: &[u8], now: u64) -> bool {
        let sh = self.shard_for(key);
        let d = sh.data.read();
        d.map
            .get(key)
            .is_some_and(|e| !ShardData::entry_expired(e, now))
    }

    /// Whether a key is present, ignoring TTLs entirely (an
    /// expired-but-unreaped item still counts). Prefer
    /// [`contains_at`](Self::contains_at) when a logical time is known.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.shard_for(key).data.read().map.contains_key(key)
    }

    /// Gathers statistics, occupancy, and capacity in **one** sweep over
    /// the shard locks, flushing pending touches and reaping expired
    /// entries first so `items`/`used_bytes` count only live data. Items
    /// that expired at or before `now` but are invisible to the reaper
    /// (inline plane, or `now` earlier than a previous flush) are filtered
    /// from the counts during the sweep.
    ///
    /// Prefer this over separate [`stats`](Self::stats) /
    /// [`used_bytes`](Self::used_bytes) / [`len`](Self::len) calls when
    /// more than one field is needed (e.g. obs sampling, the protocol's
    /// `stats` command).
    pub fn snapshot_at(&self, now: u64) -> StoreSnapshot {
        self.flush_touches(now);
        let mut snap = StoreSnapshot::default();
        for s in &self.shards {
            let sh = s.data.read();
            snap.stats.add(&sh.wstats);
            snap.capacity_bytes += sh.capacity_bytes;
            for (k, e) in &sh.map {
                if ShardData::entry_expired(e, now) {
                    continue;
                }
                debug_assert_eq!(e.bytes, k.len() + e.value.len() + ITEM_OVERHEAD);
                snap.used_bytes += e.bytes;
                snap.items += 1;
            }
            snap.stats.hits += s.hits.load(Ordering::Relaxed);
            snap.stats.misses += s.misses.load(Ordering::Relaxed);
        }
        self.sync_telemetry();
        snap
    }

    /// [`snapshot_at`](Self::snapshot_at) at logical time 0 — i.e. the raw
    /// occupancy view, where only never-valid (TTL 0 at time 0) items are
    /// filtered.
    pub fn snapshot(&self) -> StoreSnapshot {
        self.snapshot_at(0)
    }

    /// Bytes accounted to items live at `now` (keys + values + overhead).
    pub fn used_bytes_at(&self, now: u64) -> usize {
        self.snapshot_at(now).used_bytes
    }

    /// Total bytes accounted to items, ignoring TTLs (logical time 0).
    pub fn used_bytes(&self) -> usize {
        self.snapshot().used_bytes
    }

    /// Total capacity across shards.
    pub fn capacity_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.data.read().capacity_bytes)
            .sum()
    }

    /// Number of items live at `now`.
    pub fn len_at(&self, now: u64) -> usize {
        self.snapshot_at(now).items
    }

    /// Number of items, ignoring TTLs (logical time 0).
    pub fn len(&self) -> usize {
        self.snapshot().items
    }

    /// Whether the store holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregated statistics across shards.
    pub fn stats(&self) -> CacheStats {
        self.snapshot().stats
    }

    /// Drops every item (a revoked node's RAM vanishing). Pending touch
    /// records and wheel entries are discarded; slot generations advance,
    /// so records still in flight on other threads can never act on
    /// post-clear items.
    pub fn clear(&self) {
        for sh in &self.shards {
            let mut d = sh.data.write();
            for lane in &sh.lanes {
                while lane.pop().is_some() {}
            }
            d.map.clear();
            d.lru.clear();
            d.used_bytes = 0;
            d.wheel = TimerWheel::new();
            sh.publish_wheel(&d);
        }
    }
}

/// Per-shard collection caps for [`Store::hot_snapshot_at`]: simulates
/// the round-robin merge over the shard lengths and returns how many
/// items the merge would actually take from each shard, so collection
/// clones only what the merge keeps. Quotas sum to
/// `min(budget, sum(lens))`.
fn round_robin_quotas(lens: &[usize], budget: usize) -> Vec<usize> {
    let total: usize = lens.iter().sum();
    if total <= budget {
        return lens.to_vec();
    }
    let mut quotas = vec![0usize; lens.len()];
    let mut remaining = budget;
    while remaining > 0 {
        let mut any = false;
        for (q, &len) in quotas.iter_mut().zip(lens) {
            if *q < len {
                *q += 1;
                remaining -= 1;
                any = true;
                if remaining == 0 {
                    break;
                }
            }
        }
        if !any {
            break;
        }
    }
    quotas
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("shards", &self.shards.len())
            .field("read_path", &self.read_path.mode)
            .field("len", &self.len())
            .field("used_bytes", &self.used_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small() -> Store {
        Store::with_capacity(10 * 1024)
    }

    fn small_inline() -> Store {
        Store::with_read_path(
            StoreConfig {
                capacity_bytes: 10 * 1024,
                shards: 1,
            },
            ReadPathConfig {
                mode: ReadPath::Inline,
                ..ReadPathConfig::default()
            },
        )
    }

    #[test]
    fn get_set_delete_roundtrip() {
        let s = small();
        assert!(s.get(b"k").is_none());
        s.set("k", "v");
        assert_eq!(s.get(b"k").as_deref(), Some(b"v".as_ref()));
        assert!(s.delete(b"k"));
        assert!(!s.delete(b"k"));
        assert!(s.get(b"k").is_none());
        let st = s.stats();
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 2);
        assert_eq!(st.sets, 1);
        assert_eq!(st.deletes, 1);
    }

    #[test]
    fn overwrite_replaces_value_and_accounting() {
        let s = small();
        s.set("k", vec![0u8; 100]);
        let used1 = s.used_bytes();
        s.set("k", vec![0u8; 10]);
        let used2 = s.used_bytes();
        assert_eq!(s.len(), 1);
        assert_eq!(used1 - used2, 90);
    }

    #[test]
    fn lru_eviction_under_pressure() {
        // Each item: 1-byte key + 1000-byte value + 56 overhead = 1057 B.
        // 10 KiB capacity fits 9 items.
        let s = small();
        for i in 0..20u8 {
            s.set(vec![i], vec![0u8; 1000]);
        }
        assert!(s.len() <= 9);
        assert!(s.used_bytes() <= s.capacity_bytes());
        // The most recent keys survive.
        assert!(s.contains(&[19]));
        assert!(!s.contains(&[0]));
        assert!(s.stats().evictions >= 11);
    }

    #[test]
    fn get_refreshes_recency() {
        // Deferred plane: the GET only queues a touch, but every writer
        // flushes before mutating, so a single-threaded sequence behaves
        // exactly like the inline plane.
        for s in [small(), small_inline()] {
            for i in 0..9u8 {
                s.set(vec![i], vec![0u8; 1000]);
            }
            // Touch key 0 so it becomes MRU, then insert to force eviction.
            assert!(s.get(&[0]).is_some());
            s.set(vec![100], vec![0u8; 1000]);
            assert!(s.contains(&[0]), "recently-touched key must survive");
            assert!(!s.contains(&[1]), "LRU key must be evicted");
        }
    }

    #[test]
    fn explicit_flush_applies_touches() {
        let s = small();
        for i in 0..9u8 {
            s.set(vec![i], vec![0u8; 1000]);
        }
        assert!(s.get(&[0]).is_some());
        assert!(s.get(&[2]).is_some());
        assert!(s.get(&[0]).is_some()); // 0 touched again: [0, 2, 8, ...]
        let rep = s.flush_touches(0);
        assert_eq!(rep.drained, 3);
        assert_eq!(rep.applied, 2, "duplicate touch of key 0 deduped");
        assert_eq!(rep.stale, 1);
        // Evict twice: victims must be the true tail (1 then 3), with the
        // touched keys 0 and 2 refreshed.
        s.set(vec![100], vec![0u8; 1000]);
        s.set(vec![101], vec![0u8; 1000]);
        assert!(s.contains(&[0]) && s.contains(&[2]));
        assert!(!s.contains(&[1]) && !s.contains(&[3]));
    }

    #[test]
    fn stale_touches_are_dropped() {
        let s = small();
        s.set("a", "1");
        assert!(s.get(b"a").is_some()); // queued touch for a's slot
        assert!(s.delete(b"a")); // flushes (applies it), slot freed
        s.set("b", "2"); // reuses the slot with a bumped generation
        assert!(s.get(b"a").is_none());
        let rep = s.flush_touches(0);
        assert_eq!(rep.applied, 0);
        assert_eq!(rep.drained, 0, "delete's opportunistic flush drained it");
    }

    #[test]
    fn oversized_items_are_rejected() {
        let s = Store::with_capacity(1000);
        s.set("big", vec![0u8; 5000]);
        assert!(!s.contains(b"big"));
        assert_eq!(s.used_bytes(), 0);
    }

    #[test]
    fn ttl_expiry_counts_as_miss() {
        let s = small();
        s.set_at("k", "v", 100, Some(50));
        assert!(s.get_at(b"k", 120).is_some());
        assert!(s.get_at(b"k", 150).is_none()); // expired exactly at 150
        assert!(!s.contains_at(b"k", 150));
        // The shared-lock GET never mutates; the wheel reaps on the flush.
        assert!(s.contains(b"k"), "entry lingers until a flush");
        let rep = s.flush_touches(150);
        assert_eq!(rep.expired, 1);
        assert!(!s.contains(b"k"), "wheel reaped the expired item");
        let st = s.stats();
        assert_eq!(st.expirations, 1);
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 1);
    }

    #[test]
    fn inline_plane_expires_on_get() {
        let s = small_inline();
        s.set_at("k", "v", 100, Some(50));
        assert!(s.get_at(b"k", 150).is_none());
        assert!(!s.contains(b"k"), "inline GET removes the expired item");
        assert_eq!(s.stats().expirations, 1);
    }

    #[test]
    fn wheel_reaps_without_a_get() {
        // The whole point of the wheel: memory comes back without an
        // unlucky GET colliding with the expired entry.
        let s = small();
        s.set_at("short", "v", 0, Some(10));
        s.set_at("long", "v", 0, Some(1_000_000));
        s.set_at("forever", "v", 0, None);
        assert_eq!(s.len(), 3);
        let rep = s.flush_touches(10);
        assert_eq!(rep.expired, 1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.stats().expirations, 1);
        assert!(!s.contains(b"short"));
        assert!(s.contains(b"long") && s.contains(b"forever"));
        // No due deadline: the flush fast-path skips the shard entirely.
        let rep = s.flush_touches(11);
        assert!(!rep.any());
    }

    #[test]
    fn wheel_records_for_overwritten_entries_go_stale() {
        let s = small();
        s.set_at("k", "v1", 0, Some(10));
        s.set_at("k", "v2", 0, None); // overwrite drops the TTL
        let rep = s.flush_touches(100);
        assert_eq!(rep.expired, 0, "stale wheel record must not reap v2");
        assert_eq!(s.get_at(b"k", 100).as_deref(), Some(b"v2".as_ref()));
    }

    #[test]
    fn expired_entry_unblocks_add_and_fails_replace() {
        // Satellite bugfix: presence is TTL-aware on both planes.
        for s in [small(), small_inline()] {
            s.set_at("k", "old", 0, Some(10));
            assert_eq!(
                s.set_policy_at("k", "new", 20, None, SetPolicy::IfPresent),
                SetOutcome::NotStored,
                "replace must fail on an expired entry"
            );
            assert_eq!(
                s.set_policy_at("k", "new", 20, None, SetPolicy::IfAbsent),
                SetOutcome::Stored,
                "add must succeed over an expired entry"
            );
            assert_eq!(s.get_at(b"k", 20).as_deref(), Some(b"new".as_ref()));
            assert_eq!(s.stats().expirations, 1);
        }
    }

    #[test]
    fn delete_of_expired_reports_not_found() {
        for s in [small(), small_inline()] {
            s.set_at("k", "v", 0, Some(10));
            assert!(!s.delete_at(b"k", 20), "expired item deletes as absent");
            assert!(!s.contains(b"k"), "but it is purged");
            let st = s.stats();
            assert_eq!(st.deletes, 0);
            assert_eq!(st.expirations, 1);
        }
    }

    #[test]
    fn snapshot_at_counts_only_live_items() {
        for s in [small(), small_inline()] {
            s.set_at("t", vec![0u8; 100], 0, Some(10));
            s.set_at("p", vec![0u8; 100], 0, None);
            let before = s.snapshot_at(5);
            assert_eq!(before.items, 2);
            let after = s.snapshot_at(10);
            assert_eq!(after.items, 1, "expired item leaves the counts");
            assert_eq!(after.used_bytes, 1 + 100 + ITEM_OVERHEAD);
            assert_eq!(s.len_at(10), 1);
            assert_eq!(s.used_bytes_at(10), after.used_bytes);
        }
    }

    #[test]
    fn clear_empties_everything() {
        let s = small();
        for i in 0..5u8 {
            s.set_at(vec![i], "v", 0, Some(100));
        }
        s.get(&[0]); // leave a touch record in flight
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.used_bytes(), 0);
        // Store remains usable; stale touch/wheel records are inert.
        s.set("x", "y");
        assert!(s.contains(b"x"));
        let rep = s.flush_touches(1_000);
        assert_eq!(rep.expired, 0);
        assert!(s.contains(b"x"));
    }

    #[test]
    fn sharding_distributes_keys() {
        let s = Store::new(StoreConfig {
            capacity_bytes: 1 << 20,
            shards: 8,
        });
        for i in 0..1000u32 {
            s.set(i.to_be_bytes().to_vec(), "v");
        }
        assert_eq!(s.len(), 1000);
        let occupied = s
            .shards
            .iter()
            .filter(|sh| !sh.data.read().map.is_empty())
            .count();
        assert!(
            occupied >= 6,
            "keys should spread over shards, got {occupied}"
        );
    }

    #[test]
    fn hit_rate_math() {
        let s = small();
        s.set("a", "1");
        s.get(b"a");
        s.get(b"a");
        s.get(b"nope");
        assert!((s.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn get_many_matches_sequential_gets() {
        let s = Store::new(StoreConfig {
            capacity_bytes: 1 << 20,
            shards: 4,
        });
        let t = Store::new(StoreConfig {
            capacity_bytes: 1 << 20,
            shards: 4,
        });
        for i in 0..64u32 {
            if i % 3 != 0 {
                s.set_at(i.to_be_bytes().to_vec(), "v", 0, Some(100));
                t.set_at(i.to_be_bytes().to_vec(), "v", 0, Some(100));
            }
        }
        let keys: Vec<Vec<u8>> = (0..64u32).map(|i| i.to_be_bytes().to_vec()).collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let batched = s.get_many(&refs, 50);
        let sequential: Vec<Option<Bytes>> = refs.iter().map(|k| t.get_at(k, 50)).collect();
        assert_eq!(batched, sequential);
        assert_eq!(s.stats(), t.stats(), "batched stats must match sequential");
        // Expired items behave identically too (TTL 100 at t=200).
        let batched = s.get_many(&refs, 200);
        assert!(batched.iter().all(|v| v.is_none()));
        assert_eq!(s.stats(), {
            refs.iter().for_each(|k| {
                t.get_at(k, 200);
            });
            t.stats()
        });
    }

    #[test]
    fn set_many_groups_by_shard_and_preserves_order() {
        let s = Store::new(StoreConfig {
            capacity_bytes: 1 << 20,
            shards: 4,
        });
        // Two writes to the same key in one batch: last one wins, exactly
        // as with sequential sets.
        let items = vec![
            (
                Bytes::copy_from_slice(b"dup"),
                Bytes::copy_from_slice(b"first"),
                None,
            ),
            (
                Bytes::copy_from_slice(b"a"),
                Bytes::copy_from_slice(b"1"),
                None,
            ),
            (
                Bytes::copy_from_slice(b"b"),
                Bytes::copy_from_slice(b"2"),
                Some(10),
            ),
            (
                Bytes::copy_from_slice(b"dup"),
                Bytes::copy_from_slice(b"last"),
                None,
            ),
        ];
        let stored = s.set_many_at(items, 0);
        assert_eq!(stored, 4);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(b"dup").as_deref(), Some(b"last".as_ref()));
        assert!(
            s.get_at(b"b", 11).is_none(),
            "TTL applies through the batch"
        );
        assert_eq!(s.stats().sets, 4);
    }

    #[test]
    fn set_policy_single_lock_semantics() {
        let s = small();
        assert_eq!(
            s.set_policy_at("k", "a", 0, None, SetPolicy::IfPresent),
            SetOutcome::NotStored
        );
        assert_eq!(
            s.set_policy_at("k", "a", 0, None, SetPolicy::IfAbsent),
            SetOutcome::Stored
        );
        assert_eq!(
            s.set_policy_at("k", "b", 0, None, SetPolicy::IfAbsent),
            SetOutcome::NotStored
        );
        assert_eq!(
            s.set_policy_at("k", "c", 0, None, SetPolicy::IfPresent),
            SetOutcome::Stored
        );
        assert_eq!(s.get(b"k").as_deref(), Some(b"c".as_ref()));
        let tiny = Store::with_capacity(128);
        assert_eq!(
            tiny.set_policy_at("big", vec![0u8; 500], 0, None, SetPolicy::Always),
            SetOutcome::TooLarge
        );
        assert!(!tiny.contains(b"big"));
    }

    #[test]
    fn snapshot_is_one_sweep_view() {
        let s = small();
        s.set("a", "1");
        s.set("b", "22");
        s.get(b"a");
        s.get(b"missing");
        s.delete(b"b");
        let snap = s.snapshot();
        assert_eq!(snap.stats, s.stats());
        assert_eq!(snap.used_bytes, s.used_bytes());
        assert_eq!(snap.capacity_bytes, s.capacity_bytes());
        assert_eq!(snap.items, s.len());
        assert_eq!(snap.stats.deletes, 1);
    }

    #[test]
    fn telemetry_syncs_on_flush_cadence() {
        let obs = Obs::new();
        let s = small();
        s.attach_telemetry(&obs, None);
        s.set_at("k", "v", 0, Some(5));
        for _ in 0..3 {
            s.get_at(b"k", 1);
        }
        s.get_at(b"missing", 1);
        s.flush_touches(10);
        assert_eq!(obs.counter("store_rlock_gets_total").get(), 4);
        assert_eq!(obs.counter("store_wlock_gets_total").get(), 0);
        assert_eq!(obs.counter("store_touch_flush_total").get(), 1);
        assert_eq!(obs.counter("store_touch_flush_records_total").get(), 3);
        assert_eq!(obs.counter("store_touch_flush_applied_total").get(), 1);
        assert_eq!(obs.counter("store_touch_flush_stale_total").get(), 2);
        assert_eq!(obs.counter("ttl_wheel_expired_total").get(), 1);
        assert!(obs.counter("ttl_wheel_advances_total").get() >= 1);
        assert_eq!(obs.gauge("ttl_wheel_pending").get(), 0.0);
        // Deltas, not absolutes: a second sync must not double-count.
        s.flush_touches(11);
        s.snapshot_at(11);
        assert_eq!(obs.counter("store_rlock_gets_total").get(), 4);
    }

    proptest! {
        /// Accounting invariants hold under arbitrary operation sequences:
        /// used_bytes matches the sum over live items and never exceeds
        /// capacity.
        #[test]
        fn accounting_invariants(ops in proptest::collection::vec(
            (0u8..3, 0u16..50, 0usize..2000), 1..300)) {
            let s = Store::new(StoreConfig { capacity_bytes: 64 * 1024, shards: 4 });
            for (op, key, size) in ops {
                let k = key.to_be_bytes().to_vec();
                match op {
                    0 => s.set(k, vec![0u8; size]),
                    1 => { s.get(&k); }
                    _ => { s.delete(&k); }
                }
                prop_assert!(s.used_bytes() <= s.capacity_bytes());
            }
            // Recompute used from scratch via per-item sizes.
            let mut expect = 0usize;
            for sh in &s.shards {
                let sh = sh.data.read();
                let mut acc = 0usize;
                for (k, e) in &sh.map {
                    expect += k.len() + e.value.len() + ITEM_OVERHEAD;
                    acc += e.bytes;
                    prop_assert_eq!(e.bytes, k.len() + e.value.len() + ITEM_OVERHEAD);
                }
                prop_assert_eq!(acc, sh.used_bytes);
                prop_assert_eq!(sh.lru.len(), sh.map.len());
            }
            prop_assert_eq!(s.used_bytes(), expect);
        }
    }
}
