//! Live hot-key replication: source → passive backup over the wire.
//!
//! The paper's robustness story (§3.3) keeps a cheap burstable *backup*
//! holding every hot item that lives on revocable spot nodes. This module
//! is the streaming leg of the unified recovery layer (re-exported as
//! `spotcache_recovery::stream`; the simulated geo-replication baseline
//! lives separately in `spotcache_core::geo_baseline`): a source
//! [`Store`] tails its hot-key
//! mutations through a [`MutationSink`] tap into a bounded
//! [`ReplicationQueue`], and a [`Replicator`] thread ships them to a real
//! backup server as memcached `set`/`delete` commands over TCP.
//!
//! Design points (see DESIGN.md §"Revocation drills" for the derivation):
//!
//! * **Bounded queue, drop-oldest.** Replication must never stall the data
//!   plane. When the backup link is slower than the write rate the queue
//!   drops its *oldest* entries first: a dropped old `set` is repaired by
//!   any newer write of the same key, and the warm-up pump replays the
//!   backup's whole hot set anyway, so old losses only widen the stale
//!   window rather than corrupt it.
//! * **Acked shipping.** Batches are shipped as replying (non-`noreply`)
//!   commands and every response line is validated, so a corrupted or
//!   desynchronized link is *detected* (→ reconnect + retry) instead of
//!   silently diverging. Sets are idempotent, so re-shipping a batch after
//!   a failed ack is safe.
//! * **Retry with exponential backoff, bounded.** A dead link backs off
//!   from [`ReplicationConfig::backoff_base`] to
//!   [`ReplicationConfig::backoff_max`]; after
//!   [`ReplicationConfig::max_batch_retries`] failed attempts the batch is
//!   dropped (counted), keeping memory bounded through long partitions.
//! * **Everything is counted.** Shipped, queue-dropped, batch-dropped,
//!   retries, reconnects and link errors surface as `repl_*` obs series
//!   and as `replication.*` trace spans; faults never panic the source.
//!
//! TTL fidelity: the tap records the *relative* TTL the writer supplied;
//! shipping re-bases it on the backup's clock, so a replicated item can
//! outlive its source copy by the replication delay. The paper's hot items
//! are effectively TTL-less, and the warm-up pump re-derives TTLs from the
//! backup's clock the same way.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;
use spotcache_obs::{trace, Obs, TraceContext, Tracer};

use crate::protocol::{decode_value, EXPTIME_ABSOLUTE_CUTOFF};
use crate::store::{MutationSink, Store};

/// Tuning knobs for the replication stream.
#[derive(Debug, Clone)]
pub struct ReplicationConfig {
    /// Queue capacity in mutations; beyond it the oldest entry is dropped.
    pub queue_capacity: usize,
    /// Mutations shipped per batch (one write + one ack read per batch).
    pub batch_max: usize,
    /// Per-link read/write timeout — a stalled backup trips this rather
    /// than hanging the shipper.
    pub io_timeout: Duration,
    /// First reconnect/retry delay after a link error.
    pub backoff_base: Duration,
    /// Backoff ceiling (doubling stops here).
    pub backoff_max: Duration,
    /// Multiplicative jitter applied to every backoff sleep: each delay is
    /// scaled by a uniform factor in `1 ± backoff_jitter`. Without it a
    /// fleet of replicators revived by the same revocation retries in
    /// lockstep, hammering the backup in synchronized bursts; ±25 % (the
    /// default) is enough to spread them out. `0.0` disables jitter
    /// (deterministic schedules, used by some tests).
    pub backoff_jitter: f64,
    /// Idle poll interval when the queue is empty.
    pub poll_interval: Duration,
    /// Ship attempts per batch before it is dropped (bounds memory and
    /// latency through long partitions; the pump repairs the loss).
    pub max_batch_retries: u32,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 16_384,
            batch_max: 64,
            io_timeout: Duration::from_millis(500),
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(500),
            backoff_jitter: 0.25,
            poll_interval: Duration::from_millis(1),
            max_batch_retries: 8,
        }
    }
}

/// One tailed store mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// A key was stored. `raw_value` is the raw stored bytes (flag prefix
    /// included when written through the protocol); `ttl` is the relative
    /// TTL the writer supplied.
    Set {
        /// The key.
        key: Bytes,
        /// Raw stored value.
        raw_value: Bytes,
        /// Relative TTL, if any.
        ttl: Option<u64>,
    },
    /// A key was deleted.
    Delete {
        /// The key.
        key: Bytes,
    },
}

impl Mutation {
    /// The mutation's key.
    pub fn key(&self) -> &Bytes {
        match self {
            Mutation::Set { key, .. } | Mutation::Delete { key } => key,
        }
    }

    /// Applies the mutation directly to a store at logical time `now` —
    /// the loopback equivalent of shipping it over the wire. Used by the
    /// replay-convergence tests; the live path always ships TCP.
    pub fn apply(&self, store: &Store, now: u64) {
        match self {
            Mutation::Set {
                key,
                raw_value,
                ttl,
            } => store.set_at(key.clone(), raw_value.clone(), now, *ttl),
            Mutation::Delete { key } => {
                store.delete(key);
            }
        }
    }
}

/// The bounded drop-oldest mutation queue between the tap and the shipper.
///
/// Install it as a store's [`MutationSink`] (via
/// [`Store::set_mutation_sink`]) to tail writes; an optional hot-key
/// prefix restricts replication to the hot tier, matching the paper's
/// "backup holds hot content only".
#[derive(Debug)]
pub struct ReplicationQueue {
    inner: Mutex<VecDeque<Mutation>>,
    capacity: usize,
    hot_prefix: Option<Vec<u8>>,
    enqueued: AtomicU64,
    dropped: AtomicU64,
}

impl ReplicationQueue {
    /// Creates a queue holding at most `capacity` mutations, replicating
    /// only keys starting with `hot_prefix` (`None` = every key).
    pub fn new(capacity: usize, hot_prefix: Option<Vec<u8>>) -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            capacity: capacity.max(1),
            hot_prefix,
            enqueued: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        })
    }

    fn admits(&self, key: &[u8]) -> bool {
        match &self.hot_prefix {
            Some(p) => key.starts_with(p),
            None => true,
        }
    }

    /// Enqueues a mutation, dropping the oldest entry when full.
    pub fn push(&self, m: Mutation) {
        let mut q = self.inner.lock();
        if q.len() >= self.capacity {
            q.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(m);
        self.enqueued.fetch_add(1, Ordering::Relaxed);
    }

    /// Moves up to `max` mutations into `out` (appended, FIFO order).
    pub fn drain_into(&self, out: &mut Vec<Mutation>, max: usize) {
        let mut q = self.inner.lock();
        let n = max.min(q.len());
        out.extend(q.drain(..n));
    }

    /// Mutations currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mutations accepted since creation (excludes filtered keys).
    pub fn enqueued(&self) -> u64 {
        self.enqueued.load(Ordering::Relaxed)
    }

    /// Mutations dropped by the drop-oldest policy.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl MutationSink for ReplicationQueue {
    fn on_set(&self, key: &Bytes, raw_value: &Bytes, ttl: Option<u64>) {
        if self.admits(key) {
            self.push(Mutation::Set {
                key: key.clone(),
                raw_value: raw_value.clone(),
                ttl,
            });
        }
    }

    fn on_delete(&self, key: &[u8]) {
        if self.admits(key) {
            self.push(Mutation::Delete {
                key: Bytes::copy_from_slice(key),
            });
        }
    }
}

/// Cumulative link statistics (also exported as `repl_*` obs counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Mutations acked by the backup.
    pub shipped: u64,
    /// Mutations dropped by the queue's drop-oldest policy.
    pub queue_dropped: u64,
    /// Mutations dropped after exhausting batch retries.
    pub batch_dropped: u64,
    /// Failed ship attempts (each is followed by a backoff).
    pub retries: u64,
    /// Successful link (re)connects after the first.
    pub reconnects: u64,
    /// I/O errors and bad acks observed on the link.
    pub link_errors: u64,
}

#[derive(Default)]
struct LinkShared {
    shipped: AtomicU64,
    batch_dropped: AtomicU64,
    retries: AtomicU64,
    reconnects: AtomicU64,
    link_errors: AtomicU64,
}

/// The shipper: drains a [`ReplicationQueue`] to a backup server.
pub struct Replicator {
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    shared: Arc<LinkShared>,
    queue: Arc<ReplicationQueue>,
}

/// Serializes a batch as replying memcached commands and the number of
/// response lines expected back.
///
/// When `ctx` is supplied the batch is prefixed with a `trace <token>`
/// line: the receiving server's serve tree joins the shipper's trace,
/// stitching source → backup into one cross-process Chrome trace. The
/// trace line elicits no response, so the expected-ack count is
/// unchanged.
fn serialize_batch(batch: &[Mutation], out: &mut Vec<u8>, ctx: Option<TraceContext>) -> usize {
    out.clear();
    if let Some(ctx) = ctx {
        out.extend_from_slice(b"trace ");
        out.extend_from_slice(ctx.encode().as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    for m in batch {
        match m {
            Mutation::Set {
                key,
                raw_value,
                ttl,
            } => {
                // Values written through the protocol carry a 4-byte flag
                // prefix; re-frame them as proper protocol sets. Direct
                // store writes (no prefix) ship with flags 0.
                let (flags, data) = match decode_value(raw_value) {
                    Some((f, d)) => (f, d),
                    None => (0, &raw_value[..]),
                };
                // Clamp so a large relative TTL is not misread as an
                // absolute timestamp by the backup.
                let exptime = ttl.unwrap_or(0).min(EXPTIME_ABSOLUTE_CUTOFF - 1);
                out.extend_from_slice(b"set ");
                out.extend_from_slice(key);
                out.extend_from_slice(format!(" {flags} {exptime} {}\r\n", data.len()).as_bytes());
                out.extend_from_slice(data);
                out.extend_from_slice(b"\r\n");
            }
            Mutation::Delete { key } => {
                out.extend_from_slice(b"delete ");
                out.extend_from_slice(key);
                out.extend_from_slice(b"\r\n");
            }
        }
    }
    batch.len()
}

/// Reads `expected` CRLF-terminated ack lines, validating each.
fn read_acks(stream: &mut TcpStream, expected: usize, buf: &mut Vec<u8>) -> std::io::Result<()> {
    buf.clear();
    let mut chunk = [0u8; 4096];
    let mut seen = 0usize;
    let mut scanned = 0usize;
    while seen < expected {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "backup closed mid-ack",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
        while let Some(pos) = buf[scanned..].iter().position(|&b| b == b'\n') {
            let line = &buf[scanned..scanned + pos];
            let line = line.strip_suffix(b"\r").unwrap_or(line);
            match line {
                b"STORED" | b"DELETED" | b"NOT_FOUND" => {}
                other => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("bad ack: {:?}", String::from_utf8_lossy(other)),
                    ));
                }
            }
            scanned += pos + 1;
            seen += 1;
            if seen == expected {
                break;
            }
        }
    }
    Ok(())
}

/// Serializes `batch` as replying commands into `req`, writes it to
/// `stream`, and validates every ack line (using `ack_buf` as scratch).
///
/// Shared by the replication shipper and the warm-up pump
/// (`spotcache_recovery::replay`): both move store contents over the wire as
/// acked memcached commands, so a corrupt or truncated link surfaces as
/// an `Err` instead of silent divergence.
///
/// `ctx` propagates the caller's trace context ahead of the batch (see
/// [`TraceContext`]); `None` ships a plain batch.
pub fn ship_batch(
    stream: &mut TcpStream,
    batch: &[Mutation],
    req: &mut Vec<u8>,
    ack_buf: &mut Vec<u8>,
    ctx: Option<TraceContext>,
) -> std::io::Result<()> {
    let expected = serialize_batch(batch, req, ctx);
    stream.write_all(req)?;
    read_acks(stream, expected, ack_buf)
}

impl Replicator {
    /// Starts a shipper thread draining `queue` to the backup at `addr`.
    ///
    /// When `obs` is supplied, link activity surfaces as `repl_*` counters
    /// and the `repl_queue_depth` gauge; when `tracer` is supplied, batch
    /// ships, reconnects, and link faults appear as `replication.*` spans.
    pub fn start(
        addr: SocketAddr,
        queue: Arc<ReplicationQueue>,
        cfg: ReplicationConfig,
        obs: Option<Arc<Obs>>,
        tracer: Option<Arc<Tracer>>,
    ) -> Self {
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(LinkShared::default());
        let handle = {
            let shutdown = Arc::clone(&shutdown);
            let shared = Arc::clone(&shared);
            let queue = Arc::clone(&queue);
            // The shipper inherits the spawner's logical pid and ambient
            // trace context so its spans land on the right process lane
            // and join the caller's trace.
            let spawn_pid = trace::thread_pid();
            let spawn_ctx = trace::thread_context();
            std::thread::Builder::new()
                .name("repl-shipper".into())
                .spawn(move || {
                    trace::set_thread_pid(spawn_pid);
                    trace::set_thread_context(spawn_ctx);
                    if let Some(t) = tracer.as_deref() {
                        t.register_current_thread("repl-shipper");
                    }
                    ship_loop(addr, queue, cfg, obs, tracer, shutdown, shared)
                })
                .expect("spawn replication shipper")
        };
        Self {
            shutdown,
            handle: Some(handle),
            shared,
            queue,
        }
    }

    /// Current link statistics.
    pub fn stats(&self) -> ReplicationStats {
        ReplicationStats {
            shipped: self.shared.shipped.load(Ordering::Relaxed),
            queue_dropped: self.queue.dropped(),
            batch_dropped: self.shared.batch_dropped.load(Ordering::Relaxed),
            retries: self.shared.retries.load(Ordering::Relaxed),
            reconnects: self.shared.reconnects.load(Ordering::Relaxed),
            link_errors: self.shared.link_errors.load(Ordering::Relaxed),
        }
    }

    /// Waits until every accepted mutation is accounted for (shipped or
    /// dropped) or `timeout` elapses; returns whether the stream drained.
    /// Writers should be quiesced first — this is the 2-minute-warning
    /// drain step.
    pub fn flush(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let s = self.stats();
            if s.shipped + s.queue_dropped + s.batch_dropped >= self.queue.enqueued() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Signals shutdown and joins the shipper thread. Queued and in-flight
    /// mutations are abandoned; call [`flush`](Self::flush) first for a
    /// graceful drain.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Replicator {
    fn drop(&mut self) {
        self.stop();
    }
}

#[allow(clippy::too_many_arguments)]
/// Global seed counter for per-replicator jitter streams. Every shipper
/// thread draws a distinct seed here, so replicators started (or revived)
/// at the same instant still jitter independently.
static JITTER_SEED: AtomicU64 = AtomicU64::new(0x9e37_79b9_7f4a_7c15);

/// Draws a fresh, decorrelated jitter-RNG state.
pub fn next_jitter_seed() -> u64 {
    let mut s = JITTER_SEED.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
    splitmix64(&mut s)
}

/// One step of the splitmix64 generator (tiny, seedable, dependency-free).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Scales `base` by a uniform factor in `1 ± jitter`, advancing `state`.
///
/// `jitter <= 0` returns `base` unchanged (deterministic schedules).
/// Exposed so the restart/auto-scaling layers can reuse the exact backoff
/// discipline the replicator ships with.
pub fn jittered_backoff(base: Duration, jitter: f64, state: &mut u64) -> Duration {
    if jitter <= 0.0 {
        return base;
    }
    // 53 uniform bits → [0, 1), mapped to [1 - jitter, 1 + jitter).
    let unit = (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64;
    let factor = 1.0 + jitter * (2.0 * unit - 1.0);
    base.mul_f64(factor.max(0.0))
}

fn ship_loop(
    addr: SocketAddr,
    queue: Arc<ReplicationQueue>,
    cfg: ReplicationConfig,
    obs: Option<Arc<Obs>>,
    tracer: Option<Arc<Tracer>>,
    shutdown: Arc<AtomicBool>,
    shared: Arc<LinkShared>,
) {
    let c_shipped = obs.as_ref().map(|o| o.counter("repl_shipped_total"));
    let c_retries = obs.as_ref().map(|o| o.counter("repl_retries_total"));
    let c_reconn = obs.as_ref().map(|o| o.counter("repl_reconnects_total"));
    let c_errors = obs.as_ref().map(|o| o.counter("repl_link_errors_total"));
    let c_bdrop = obs.as_ref().map(|o| o.counter("repl_batch_dropped_total"));
    let c_qdrop = obs.as_ref().map(|o| o.counter("repl_queue_dropped_total"));
    let g_depth = obs.as_ref().map(|o| o.gauge("repl_queue_depth"));
    let mut qdrop_seen = 0u64;

    let fault = |kind: &'static str| {
        shared.link_errors.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = &c_errors {
            c.inc();
        }
        if let Some(t) = tracer.as_deref() {
            if t.is_enabled() {
                // Zero-length marker span: faults show on the timeline.
                t.record_at("replication", kind, t.now_us(), 0.0);
            }
        }
    };

    let mut conn: Option<TcpStream> = None;
    let mut ever_connected = false;
    let mut backoff = cfg.backoff_base;
    let mut jitter_state = next_jitter_seed();
    let mut batch: Vec<Mutation> = Vec::new();
    let mut attempts: u32 = 0;
    let mut req = Vec::new();
    let mut ack_buf = Vec::new();

    while !shutdown.load(Ordering::SeqCst) {
        if let (Some(g), Some(c)) = (&g_depth, &c_qdrop) {
            g.set(queue.len() as f64);
            let d = queue.dropped();
            if d > qdrop_seen {
                c.add(d - qdrop_seen);
                qdrop_seen = d;
            }
        }
        if batch.is_empty() {
            queue.drain_into(&mut batch, cfg.batch_max);
            if batch.is_empty() {
                std::thread::sleep(cfg.poll_interval);
                continue;
            }
        }
        // Connect (or reconnect) with backoff.
        if conn.is_none() {
            let _span = tracer.as_deref().map(|t| t.span("replication", "connect"));
            match TcpStream::connect_timeout(&addr, cfg.io_timeout) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    let _ = s.set_read_timeout(Some(cfg.io_timeout));
                    let _ = s.set_write_timeout(Some(cfg.io_timeout));
                    if ever_connected {
                        shared.reconnects.fetch_add(1, Ordering::Relaxed);
                        if let Some(c) = &c_reconn {
                            c.inc();
                        }
                    }
                    ever_connected = true;
                    backoff = cfg.backoff_base;
                    conn = Some(s);
                }
                Err(_) => {
                    fault("connect_failed");
                    attempts =
                        bump_attempts(attempts, &cfg, &mut batch, &shared, &c_bdrop, &c_retries);
                    std::thread::sleep(jittered_backoff(
                        backoff,
                        cfg.backoff_jitter,
                        &mut jitter_state,
                    ));
                    backoff = (backoff * 2).min(cfg.backoff_max);
                    continue;
                }
            }
        }
        let stream = conn.as_mut().expect("connected above");
        let span = tracer
            .as_deref()
            .map(|t| t.span("replication", "ship_batch"));
        // Propagate this ship's span as the batch's parent context; when
        // the span is unsampled (or tracing is off) fall back to the
        // ambient context so a drill-driven shipper still stitches.
        let ctx = span
            .as_ref()
            .and_then(|s| s.context())
            .or_else(trace::thread_context);
        let result = ship_batch(stream, &batch, &mut req, &mut ack_buf, ctx);
        drop(span);
        match result {
            Ok(()) => {
                shared
                    .shipped
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                if let Some(c) = &c_shipped {
                    c.add(batch.len() as u64);
                }
                batch.clear();
                attempts = 0;
                backoff = cfg.backoff_base;
            }
            Err(e) => {
                fault(if e.kind() == std::io::ErrorKind::InvalidData {
                    "corrupt_ack"
                } else {
                    "link_io_error"
                });
                conn = None; // the link state is unknown: resync by reconnecting
                attempts = bump_attempts(attempts, &cfg, &mut batch, &shared, &c_bdrop, &c_retries);
                std::thread::sleep(jittered_backoff(
                    backoff,
                    cfg.backoff_jitter,
                    &mut jitter_state,
                ));
                backoff = (backoff * 2).min(cfg.backoff_max);
            }
        }
    }
}

/// Counts a failed attempt; drops the batch once retries are exhausted.
fn bump_attempts(
    attempts: u32,
    cfg: &ReplicationConfig,
    batch: &mut Vec<Mutation>,
    shared: &LinkShared,
    c_bdrop: &Option<spotcache_obs::Counter>,
    c_retries: &Option<spotcache_obs::Counter>,
) -> u32 {
    shared.retries.fetch_add(1, Ordering::Relaxed);
    if let Some(c) = c_retries {
        c.inc();
    }
    let attempts = attempts + 1;
    if attempts > cfg.max_batch_retries {
        shared
            .batch_dropped
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        if let Some(c) = c_bdrop {
            c.add(batch.len() as u64);
        }
        batch.clear();
        return 0;
    }
    attempts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{CacheServer, LogicalClock};
    use crate::store::StoreConfig;

    fn store() -> Arc<Store> {
        Arc::new(Store::new(StoreConfig {
            capacity_bytes: 4 << 20,
            shards: 4,
        }))
    }

    #[test]
    fn jittered_backoff_stays_inside_the_band() {
        let base = Duration::from_millis(100);
        let mut state = next_jitter_seed();
        for _ in 0..1_000 {
            let d = jittered_backoff(base, 0.25, &mut state);
            assert!(d >= Duration::from_millis(75), "{d:?} below band");
            assert!(d < Duration::from_millis(125), "{d:?} above band");
        }
        // Zero jitter is exactly deterministic.
        assert_eq!(jittered_backoff(base, 0.0, &mut state), base);
    }

    #[test]
    fn two_replicators_retry_schedules_decorrelate() {
        // Two shippers revived by the same revocation draw distinct seeds
        // and so sleep for different jittered delays at every step of the
        // same base schedule — no lockstep reconnect storms.
        let mut a = next_jitter_seed();
        let mut b = next_jitter_seed();
        assert_ne!(a, b);
        let mut base = Duration::from_millis(10);
        let max = Duration::from_millis(500);
        let mut differing = 0;
        for _ in 0..16 {
            let da = jittered_backoff(base, 0.25, &mut a);
            let db = jittered_backoff(base, 0.25, &mut b);
            if da != db {
                differing += 1;
            }
            base = (base * 2).min(max);
        }
        assert!(
            differing >= 12,
            "schedules stayed correlated: only {differing}/16 steps differ"
        );
    }

    #[test]
    fn tap_captures_sets_and_deletes_with_prefix_filter() {
        let s = store();
        let q = ReplicationQueue::new(64, Some(b"h".to_vec()));
        s.set_mutation_sink(Some(q.clone()));
        s.set("h1", "hot");
        s.set("c1", "cold");
        s.delete(b"h1");
        s.delete(b"c1");
        s.delete(b"absent"); // no-op deletes are not tapped
        assert_eq!(q.enqueued(), 2);
        let mut out = Vec::new();
        q.drain_into(&mut out, 10);
        assert!(matches!(&out[0], Mutation::Set { key, .. } if key.as_ref() == b"h1"));
        assert!(matches!(&out[1], Mutation::Delete { key } if key.as_ref() == b"h1"));
        // Removing the sink stops the tap.
        s.set_mutation_sink(None);
        s.set("h2", "hot");
        assert_eq!(q.enqueued(), 2);
    }

    #[test]
    fn queue_drops_oldest_under_backpressure() {
        let q = ReplicationQueue::new(3, None);
        for i in 0..5u8 {
            q.push(Mutation::Delete {
                key: Bytes::copy_from_slice(&[i]),
            });
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.dropped(), 2);
        assert_eq!(q.enqueued(), 5);
        let mut out = Vec::new();
        q.drain_into(&mut out, 10);
        // The two oldest (0, 1) are gone.
        assert_eq!(out[0].key().as_ref(), &[2]);
        assert_eq!(out[2].key().as_ref(), &[4]);
    }

    #[test]
    fn replicates_source_writes_to_backup_server() {
        let source = store();
        let backup = store();
        let clock = LogicalClock::new();
        let server = CacheServer::start(Arc::clone(&backup), Arc::clone(&clock), "127.0.0.1:0")
            .expect("backup server");
        let q = ReplicationQueue::new(1024, Some(b"h".to_vec()));
        source.set_mutation_sink(Some(q.clone()));
        let mut repl =
            Replicator::start(server.addr(), q, ReplicationConfig::default(), None, None);
        // Protocol-framed writes (flag prefix) and a delete.
        for i in 0..50u32 {
            let framed = crate::protocol::encode_value(7, format!("v{i}").as_bytes());
            source.set_at(format!("h{i}").into_bytes(), framed, 0, None);
        }
        source.delete(b"h0");
        assert!(repl.flush(Duration::from_secs(10)), "stream must drain");
        let stats = repl.stats();
        assert_eq!(stats.shipped, 51);
        assert_eq!(stats.batch_dropped + stats.queue_dropped, 0);
        // Backup converged: h0 deleted, the rest framed identically.
        assert!(backup.get(b"h0").is_none());
        for i in 1..50u32 {
            assert_eq!(
                backup.get(format!("h{i}").as_bytes()),
                source.get(format!("h{i}").as_bytes()),
                "key h{i} diverged"
            );
        }
        repl.stop();
    }

    #[test]
    fn dead_link_retries_then_drops_batches_without_panicking() {
        let q = ReplicationQueue::new(64, None);
        // Nothing listens here: grab an ephemeral port and close it.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let cfg = ReplicationConfig {
            io_timeout: Duration::from_millis(50),
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(5),
            max_batch_retries: 2,
            ..ReplicationConfig::default()
        };
        let mut repl = Replicator::start(addr, q.clone(), cfg, None, None);
        q.push(Mutation::Delete {
            key: Bytes::copy_from_slice(b"k"),
        });
        assert!(repl.flush(Duration::from_secs(10)), "drop must account");
        let s = repl.stats();
        assert_eq!(s.shipped, 0);
        assert_eq!(s.batch_dropped, 1);
        assert!(s.retries >= 3, "retries before dropping: {}", s.retries);
        assert!(s.link_errors >= 3);
        repl.stop();
    }

    #[test]
    fn observed_replication_exports_counters() {
        let source = store();
        let backup = store();
        let clock = LogicalClock::new();
        let server = CacheServer::start(Arc::clone(&backup), clock, "127.0.0.1:0").expect("server");
        let q = ReplicationQueue::new(1024, None);
        source.set_mutation_sink(Some(q.clone()));
        let obs = Arc::new(Obs::new());
        let tracer = Tracer::all(4096);
        let mut repl = Replicator::start(
            server.addr(),
            q,
            ReplicationConfig::default(),
            Some(Arc::clone(&obs)),
            Some(Arc::clone(&tracer)),
        );
        source.set("a", "1");
        source.set("b", "2");
        assert!(repl.flush(Duration::from_secs(10)));
        repl.stop();
        assert_eq!(obs.counter("repl_shipped_total").get(), 2);
        assert!(tracer.categories().contains(&"replication"));
        let names: std::collections::BTreeSet<&'static str> =
            tracer.spans().iter().map(|r| r.name).collect();
        assert!(names.contains("ship_batch"), "{names:?}");
    }

    #[test]
    fn shipped_batches_stitch_into_the_backup_servers_trace() {
        // Source shipper and backup server share one in-process tracer
        // (the drill topology): the backup's serve tree must join the
        // shipper's trace via the propagated `trace` line.
        let source = store();
        let backup = store();
        let clock = LogicalClock::new();
        let tracer = Tracer::all(8192);
        let mut server = CacheServer::start_full(
            Arc::clone(&backup),
            clock,
            "127.0.0.1:0",
            crate::server::ServerConfig::default(),
            None,
            Some(Arc::clone(&tracer)),
        )
        .expect("backup server");
        let q = ReplicationQueue::new(1024, None);
        source.set_mutation_sink(Some(q.clone()));
        let mut repl = Replicator::start(
            server.addr(),
            q,
            ReplicationConfig::default(),
            None,
            Some(Arc::clone(&tracer)),
        );
        source.set("a", "1");
        assert!(repl.flush(Duration::from_secs(10)));
        repl.stop();
        server.stop();
        let spans = tracer.spans();
        let ships: Vec<_> = spans.iter().filter(|r| r.name == "ship_batch").collect();
        let serves: Vec<_> = spans.iter().filter(|r| r.name == "serve").collect();
        assert!(!ships.is_empty() && !serves.is_empty(), "{spans:?}");
        assert!(
            serves.iter().any(|sv| ships
                .iter()
                .any(|sh| sv.trace_id == sh.trace_id && sv.parent_id == sh.span_id)),
            "no serve span parented onto a ship_batch span:\nships={ships:?}\nserves={serves:?}"
        );
    }
}
