//! memcached-style slab-class memory accounting.
//!
//! memcached does not allocate items individually: memory is carved into
//! 1 MiB *pages*, each assigned to a *slab class* of fixed-size chunks;
//! an item occupies one chunk of the smallest class that fits it. Two
//! consequences matter for capacity planning (and therefore for the
//! optimizer's `usable_ram_gb`):
//!
//! * **internal fragmentation** — a 1.1 KiB item in a 1.25 KiB chunk wastes
//!   the difference, and
//! * **page calcification** — pages assigned to one class are not available
//!   to others, so a shifting size distribution strands memory.
//!
//! This module implements the chunk-size ladder and page accounting so the
//! effective capacity of a node under a given item-size distribution can be
//! computed rather than guessed.

/// Page size (memcached's slab page).
pub const PAGE_SIZE: usize = 1 << 20;

/// Smallest chunk size (memcached default: 96 bytes with 48-byte item
/// overhead included).
pub const MIN_CHUNK: usize = 96;

/// A slab-class ladder with a geometric growth factor.
#[derive(Debug, Clone)]
pub struct SlabClasses {
    /// Ascending chunk sizes.
    sizes: Vec<usize>,
}

impl SlabClasses {
    /// Builds the ladder with memcached's default growth factor (1.25).
    pub fn default_ladder() -> Self {
        Self::with_growth_factor(1.25)
    }

    /// Builds a ladder with a custom growth factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 1.0`.
    pub fn with_growth_factor(factor: f64) -> Self {
        assert!(factor > 1.0, "growth factor must exceed 1");
        let mut sizes = Vec::new();
        let mut size = MIN_CHUNK;
        while size <= PAGE_SIZE / 2 {
            sizes.push(size);
            let next = ((size as f64 * factor) as usize).max(size + 8);
            // memcached aligns chunks to 8 bytes.
            size = next.div_ceil(8) * 8;
        }
        sizes.push(PAGE_SIZE); // the "huge" class: one item per page
        Self { sizes }
    }

    /// Number of classes.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// The class index whose chunks fit an item of `bytes` total size
    /// (key + value + overhead); `None` if it exceeds the page size.
    pub fn class_for(&self, bytes: usize) -> Option<usize> {
        let idx = self.sizes.partition_point(|&s| s < bytes);
        (idx < self.sizes.len()).then_some(idx)
    }

    /// Chunk size of a class.
    pub fn chunk_size(&self, class: usize) -> usize {
        self.sizes[class]
    }

    /// Chunks per page for a class.
    pub fn chunks_per_page(&self, class: usize) -> usize {
        PAGE_SIZE / self.sizes[class]
    }

    /// Internal fragmentation of an item of `bytes` in its class, bytes.
    pub fn waste(&self, bytes: usize) -> Option<usize> {
        self.class_for(bytes).map(|c| self.sizes[c] - bytes)
    }
}

/// Page-level accounting for one node's slab memory.
#[derive(Debug, Clone)]
pub struct SlabAllocator {
    classes: SlabClasses,
    total_pages: usize,
    assigned_pages: Vec<usize>,
    used_chunks: Vec<usize>,
}

/// Errors from [`SlabAllocator::allocate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlabError {
    /// The item exceeds the page size.
    TooLarge,
    /// No free chunk in the item's class and no unassigned page remains —
    /// the caller must evict *within the same class* (memcached's
    /// behaviour) and retry.
    NeedsEviction {
        /// The class that is full.
        class: usize,
    },
}

impl SlabAllocator {
    /// Creates an allocator over `capacity_bytes` of memory.
    pub fn new(capacity_bytes: usize) -> Self {
        let classes = SlabClasses::default_ladder();
        let n = classes.count();
        Self {
            total_pages: capacity_bytes / PAGE_SIZE,
            assigned_pages: vec![0; n],
            used_chunks: vec![0; n],
            classes,
        }
    }

    /// The ladder.
    pub fn classes(&self) -> &SlabClasses {
        &self.classes
    }

    /// Unassigned pages remaining.
    pub fn free_pages(&self) -> usize {
        self.total_pages - self.assigned_pages.iter().sum::<usize>()
    }

    /// Allocates a chunk for an item of `bytes`, assigning a fresh page to
    /// its class if needed. Returns the class used.
    pub fn allocate(&mut self, bytes: usize) -> Result<usize, SlabError> {
        let class = self.classes.class_for(bytes).ok_or(SlabError::TooLarge)?;
        let capacity = self.assigned_pages[class] * self.classes.chunks_per_page(class);
        if self.used_chunks[class] < capacity {
            self.used_chunks[class] += 1;
            return Ok(class);
        }
        if self.free_pages() > 0 {
            self.assigned_pages[class] += 1;
            self.used_chunks[class] += 1;
            return Ok(class);
        }
        Err(SlabError::NeedsEviction { class })
    }

    /// Frees one chunk in `class`.
    ///
    /// # Panics
    ///
    /// Panics if the class has no used chunks.
    pub fn free(&mut self, class: usize) {
        assert!(self.used_chunks[class] > 0, "free of empty class {class}");
        self.used_chunks[class] -= 1;
    }

    /// Bytes actually usable for items of `bytes` size each, given the
    /// current page assignment (capacity-planning helper).
    pub fn effective_capacity_items(&self, bytes: usize) -> Option<usize> {
        let class = self.classes.class_for(bytes)?;
        let assigned = self.assigned_pages[class] * self.classes.chunks_per_page(class);
        let from_free = self.free_pages() * self.classes.chunks_per_page(class);
        Some(assigned - self.used_chunks[class] + from_free)
    }

    /// Overall memory efficiency: fraction of assigned bytes holding used
    /// chunks (1.0 when nothing is assigned).
    pub fn occupancy(&self) -> f64 {
        let assigned: usize = self
            .assigned_pages
            .iter()
            .enumerate()
            .map(|(c, &p)| p * self.classes.chunks_per_page(c) * self.classes.chunk_size(c))
            .sum();
        if assigned == 0 {
            return 1.0;
        }
        let used: usize = self
            .used_chunks
            .iter()
            .enumerate()
            .map(|(c, &n)| n * self.classes.chunk_size(c))
            .sum();
        used as f64 / assigned as f64
    }
}

/// Effective usable fraction of a node's RAM for a fixed item size —
/// what the optimizer's `usable_ram_gb` should really be multiplied by
/// beyond the OS/overhead haircut.
pub fn slab_efficiency(item_bytes: usize) -> f64 {
    let classes = SlabClasses::default_ladder();
    match classes.class_for(item_bytes) {
        Some(c) => {
            let per_page = classes.chunks_per_page(c);
            (per_page * item_bytes) as f64 / PAGE_SIZE as f64
        }
        None => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ladder_is_geometric_and_aligned() {
        let l = SlabClasses::default_ladder();
        assert!(l.count() > 20);
        assert_eq!(l.chunk_size(0), MIN_CHUNK);
        for c in 0..l.count() - 1 {
            assert!(l.chunk_size(c + 1) > l.chunk_size(c));
            assert_eq!(l.chunk_size(c) % 8, 0, "class {c} unaligned");
        }
        assert_eq!(l.chunk_size(l.count() - 1), PAGE_SIZE);
    }

    #[test]
    fn class_selection_fits() {
        let l = SlabClasses::default_ladder();
        for bytes in [1usize, 96, 97, 1_000, 4_152, 100_000, PAGE_SIZE] {
            let c = l.class_for(bytes).unwrap();
            assert!(l.chunk_size(c) >= bytes);
            if c > 0 {
                assert!(
                    l.chunk_size(c - 1) < bytes,
                    "not the smallest fitting class"
                );
            }
        }
        assert!(l.class_for(PAGE_SIZE + 1).is_none());
    }

    #[test]
    fn waste_is_chunk_minus_item() {
        let l = SlabClasses::default_ladder();
        let w = l.waste(100).unwrap();
        let c = l.class_for(100).unwrap();
        assert_eq!(w, l.chunk_size(c) - 100);
    }

    #[test]
    fn allocator_assigns_pages_lazily() {
        let mut a = SlabAllocator::new(4 * PAGE_SIZE);
        assert_eq!(a.free_pages(), 4);
        let class = a.allocate(1_000).unwrap();
        assert_eq!(a.free_pages(), 3);
        // Fills the rest of the page without new assignments.
        let per_page = a.classes().chunks_per_page(class);
        for _ in 1..per_page {
            a.allocate(1_000).unwrap();
        }
        assert_eq!(a.free_pages(), 3);
        a.allocate(1_000).unwrap();
        assert_eq!(a.free_pages(), 2);
    }

    #[test]
    fn calcification_forces_in_class_eviction() {
        let mut a = SlabAllocator::new(2 * PAGE_SIZE);
        // Fill both pages with small items.
        let small_class = a.classes().class_for(100).unwrap();
        let per_page = a.classes().chunks_per_page(small_class);
        for _ in 0..2 * per_page {
            a.allocate(100).unwrap();
        }
        // A large item now has nowhere to go even though small chunks
        // could theoretically be reclaimed.
        let err = a.allocate(100_000).unwrap_err();
        assert!(matches!(err, SlabError::NeedsEviction { .. }));
        // Freeing small chunks does not help the large class (pages are
        // calcified) ...
        a.free(small_class);
        assert!(matches!(
            a.allocate(100_000),
            Err(SlabError::NeedsEviction { .. })
        ));
    }

    #[test]
    fn oversized_rejected() {
        let mut a = SlabAllocator::new(4 * PAGE_SIZE);
        assert_eq!(a.allocate(PAGE_SIZE + 1).unwrap_err(), SlabError::TooLarge);
    }

    #[test]
    fn occupancy_tracks_usage() {
        let mut a = SlabAllocator::new(4 * PAGE_SIZE);
        assert_eq!(a.occupancy(), 1.0);
        let c = a.allocate(4_152).unwrap();
        assert!(a.occupancy() < 0.1, "one chunk in a whole page");
        let per_page = a.classes().chunks_per_page(c);
        for _ in 1..per_page {
            a.allocate(4_152).unwrap();
        }
        assert!(a.occupancy() > 0.9);
    }

    #[test]
    fn effective_capacity_accounts_free_pages() {
        let a = SlabAllocator::new(4 * PAGE_SIZE);
        let items = a.effective_capacity_items(4_152).unwrap();
        let per_page = a
            .classes()
            .chunks_per_page(a.classes().class_for(4_152).unwrap());
        assert_eq!(items, 4 * per_page);
    }

    #[test]
    fn slab_efficiency_for_paper_items() {
        // 4 KiB values + key + overhead ≈ 4.2 KiB items: efficiency should
        // be decent but visibly below 1.
        let e = slab_efficiency(4_152);
        assert!((0.7..1.0).contains(&e), "{e}");
        // Pathological size just past a chunk boundary wastes a lot.
        let l = SlabClasses::default_ladder();
        let boundary = l.chunk_size(10);
        let bad = slab_efficiency(boundary + 1);
        let good = slab_efficiency(boundary);
        assert!(bad < good);
        assert_eq!(slab_efficiency(PAGE_SIZE + 1), 0.0);
    }

    proptest! {
        /// Alloc/free sequences never corrupt the accounting: used chunks
        /// never exceed assigned capacity and pages never go negative.
        #[test]
        fn accounting_invariants(ops in proptest::collection::vec((any::<bool>(), 64usize..10_000), 1..400)) {
            let mut a = SlabAllocator::new(8 * PAGE_SIZE);
            let mut live: Vec<usize> = Vec::new();
            for (is_alloc, size) in ops {
                if is_alloc || live.is_empty() {
                    if let Ok(class) = a.allocate(size) {
                        live.push(class);
                    }
                } else {
                    let class = live.swap_remove(size % live.len());
                    a.free(class);
                }
                let assigned: usize = a.assigned_pages.iter().sum();
                prop_assert!(assigned <= a.total_pages);
                for c in 0..a.classes().count() {
                    prop_assert!(
                        a.used_chunks[c] <= a.assigned_pages[c] * a.classes().chunks_per_page(c)
                    );
                }
            }
        }
    }
}
