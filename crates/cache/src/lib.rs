#![warn(missing_docs)]

//! The memcached substrate: a sharded, LRU-evicting, byte-accounted
//! in-memory key-value cache.
//!
//! The paper's system stores its cache contents in stock memcached; this
//! crate provides the equivalent building block in Rust:
//!
//! * [`lru`] — an index-based intrusive LRU list (no `unsafe`) with
//!   per-slot generation counters, and
//! * [`touch`] — lock-free bounded recency rings for the deferred read
//!   path (per-worker lanes, drop-oldest overflow), and
//! * [`wheel`] — a hierarchical timer wheel for proactive TTL expiry,
//!   advanced on the touch-flush cadence, and
//! * [`store`] — a sharded store whose steady-state GETs take only a
//!   **shared** lock (recency is recorded into touch rings and applied in
//!   batches under the write lock), with least-recently-used eviction
//!   under a byte budget, optional TTLs against a logical clock, and
//!   hit/miss/eviction statistics, and
//! * [`node`] — a cache *node*: one store sized to an instance's RAM, the
//!   unit the router places data on and the simulator kills on revocation,
//!   and
//! * [`protocol`] — the memcached text protocol (parse / execute / encode)
//!   so a node can be driven with real wire traffic, and
//! * [`reactor`] (Linux) — a raw-syscall epoll/eventfd readiness layer:
//!   `Poller` + `WakeFd`, no external deps, and
//! * [`server`] — a TCP server multiplexing nonblocking connections over
//!   the protocol codec; its default data plane is a readiness-driven
//!   reactor (idle connections cost zero CPU), with the old worker pool
//!   kept as the portable fallback, and
//! * [`replication`] — a hot-key mutation tap + bounded queue + TCP
//!   shipper keeping a passive backup warm (paper §3.3; see
//!   DESIGN.md §"Revocation drills").
//!
//! The data plane is built for pipelined batches: [`protocol::parse_request`]
//! borrows keys and data from the input buffer, [`protocol::serve_into`]
//! appends responses to a reusable output buffer, and runs of pipelined
//! `get`s execute through [`store::Store::get_many_into`] taking each
//! shard lock once per batch (see DESIGN.md §"data plane").

pub mod lru;
pub mod node;
pub mod protocol;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod replication;
pub mod server;
pub mod slab;
pub mod store;
pub mod touch;
pub mod wheel;

pub use lru::LruList;
pub use node::CacheNode;
pub use protocol::{
    execute, execute_into, parse, parse_request, serve, serve_into, serve_observed,
    serve_observed_into, Command, ParseError, ProtocolObs, Request, StoreVerb,
};
pub use replication::{
    jittered_backoff, next_jitter_seed, ship_batch, Mutation, ReplicationConfig, ReplicationQueue,
    ReplicationStats, Replicator,
};
pub use server::{
    CacheClient, CacheServer, Clock, DataPlane, LogicalClock, ServerConfig, SystemClock,
};
pub use slab::{slab_efficiency, SlabAllocator, SlabClasses, SlabError};
pub use store::{
    CacheStats, FlushReport, MutationSink, ReadPath, ReadPathConfig, SetOutcome, SetPolicy, Store,
    StoreConfig, StoreSnapshot,
};
