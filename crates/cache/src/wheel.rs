//! A per-shard hierarchical timer wheel for proactive TTL expiry.
//!
//! Before this wheel, TTLs were enforced **lazily**: an expired entry kept
//! its LRU slot and its bytes until the next unlucky GET (or an eviction)
//! happened to collide with it. The wheel turns expiry into a batched
//! background sweep on the store's flush cadence: every write (and every
//! explicit `flush_touches`) advances the wheel to the current logical
//! time under the shard write lock and reaps everything due.
//!
//! # Tick math
//!
//! The wheel is a radix-64 hierarchy over the store's logical clock (one
//! tick = one clock unit, seconds in production): [`LEVELS`] levels of 64
//! slots, level `l` covering `64^l` ticks per slot. A deadline `e` is
//! filed at the *highest* level where `e` differs from the wheel's current
//! time `last_tick` — i.e. the highest set 6-bit group of
//! `e ^ last_tick` — in slot `(e >> 6l) & 63`. With 11 levels the whole
//! `u64` range is covered, so absolute Unix-epoch deadlines work without
//! an overflow list.
//!
//! Each level keeps a 64-bit occupancy bitmap, so advancing jumps straight
//! from one occupied slot to the next (`O(levels)` per jump) rather than
//! iterating empty ticks — crucial the first time a wheel whose
//! `last_tick` is 0 meets a Unix-scale deadline of ~1.7e9.
//!
//! Records are `(deadline, lru_idx, lru_gen)` triples and are **lazy**:
//! deletes, overwrites, and evictions never search the wheel. A reaped
//! record whose generation no longer matches the LRU slot is dropped
//! (counted as stale by the store); a live match is removed from the shard
//! exactly like a lazy-expiry hit.

/// Number of radix levels; `64^11 > 2^64`, so every `u64` deadline fits.
pub const LEVELS: usize = 11;

/// Slots per level.
pub const SLOTS: usize = 64;

/// One pending expiry: the deadline plus the LRU slot coordinates used to
/// validate the record at reap time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WheelRec {
    /// Absolute logical time at which the entry expires (`expires_at`).
    pub expires_at: u64,
    /// LRU slot index within the shard.
    pub idx: u32,
    /// LRU slot generation at insert time.
    pub gen: u32,
}

struct Level {
    occupied: u64,
    slots: Vec<Vec<WheelRec>>,
}

impl Level {
    fn new() -> Self {
        Self {
            occupied: 0,
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
        }
    }
}

/// The hierarchical timer wheel. See the module docs for the tick math.
pub struct TimerWheel {
    levels: Vec<Level>,
    /// Logical time the wheel has been advanced to; all records with
    /// `expires_at <= last_tick` have been delivered.
    last_tick: u64,
    pending: usize,
}

/// Start-of-rotation base for `level` at time `t`: `t` with the low
/// `6*(level+1)` bits cleared.
#[inline]
fn rotation_base(t: u64, level: usize) -> u64 {
    let bits = 6 * (level + 1);
    if bits >= 64 {
        0
    } else {
        t & !((1u64 << bits) - 1)
    }
}

impl TimerWheel {
    /// Creates an empty wheel positioned at logical time 0.
    pub fn new() -> Self {
        Self {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            last_tick: 0,
            pending: 0,
        }
    }

    /// Number of pending (not yet delivered) records, stale ones included.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// Whether no records are pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// The wheel's current logical time.
    pub fn now(&self) -> u64 {
        self.last_tick
    }

    /// Schedules a record. A deadline at or before `last_tick` is clamped
    /// to `last_tick + 1` so it fires on the next advance.
    pub fn insert(&mut self, rec: WheelRec) {
        let e = rec.expires_at.max(self.last_tick.saturating_add(1));
        let level = Self::level_for(e ^ self.last_tick);
        let slot = ((e >> (6 * level)) & 63) as usize;
        self.levels[level].slots[slot].push(WheelRec {
            expires_at: e,
            ..rec
        });
        self.levels[level].occupied |= 1 << slot;
        self.pending += 1;
    }

    /// Level of the highest set 6-bit group of `diff` (`diff != 0`).
    #[inline]
    fn level_for(diff: u64) -> usize {
        debug_assert!(diff != 0);
        ((63 - diff.leading_zeros() as usize) / 6).min(LEVELS - 1)
    }

    /// The earliest occupied slot across all levels, as
    /// `(level, slot, slot_start_tick)`. `slot_start_tick` lower-bounds
    /// every deadline filed in that slot.
    fn next_slot(&self) -> Option<(usize, usize, u64)> {
        let mut best: Option<(usize, usize, u64)> = None;
        for (level, l) in self.levels.iter().enumerate() {
            if l.occupied == 0 {
                continue;
            }
            let cur = ((self.last_tick >> (6 * level)) & 63) as u32;
            // Invariant: within a level every occupied slot belongs to the
            // current rotation and sits strictly after the current index
            // (insert files at the highest *differing* group), so a plain
            // rotate-right + trailing_zeros finds the nearest one.
            let dist = l.occupied.rotate_right(cur).trailing_zeros() as u64;
            let slot = (cur as u64 + dist) % 64;
            let start = rotation_base(self.last_tick, level) + (slot << (6 * level));
            if best.is_none_or(|(_, _, s)| start < s) {
                best = Some((level, slot as usize, start));
            }
        }
        best
    }

    /// Lower bound on the earliest pending deadline (`None` when empty).
    /// The store mirrors this into a per-shard atomic so readers can skip
    /// flushes that would have nothing to reap.
    pub fn next_deadline(&self) -> Option<u64> {
        self.next_slot().map(|(_, _, start)| start)
    }

    /// Advances the wheel to `now`, appending every due `(idx, gen)` pair
    /// to `due`. Records not yet due that lived in a processed coarse slot
    /// cascade down to finer levels. Returns the number delivered.
    pub fn advance(&mut self, now: u64, due: &mut Vec<(u32, u32)>) -> usize {
        let mut delivered = 0usize;
        while self.pending > 0 {
            let Some((level, slot, start)) = self.next_slot() else {
                break;
            };
            if start > now {
                break;
            }
            // Position the wheel at the slot boundary *before* re-filing,
            // so cascaded records land at levels relative to it.
            self.last_tick = start;
            let mut recs = std::mem::take(&mut self.levels[level].slots[slot]);
            self.levels[level].occupied &= !(1u64 << slot);
            self.pending -= recs.len();
            for rec in recs.drain(..) {
                if rec.expires_at <= now {
                    due.push((rec.idx, rec.gen));
                    delivered += 1;
                } else {
                    self.insert(rec);
                }
            }
            // Recycle the drained vector's capacity into the emptied slot
            // so repeated advancing through a hot slot stays allocation-free.
            if self.levels[level].slots[slot].is_empty() {
                self.levels[level].slots[slot] = recs;
            }
        }
        if self.last_tick < now {
            self.last_tick = now;
        }
        delivered
    }
}

impl Default for TimerWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for TimerWheel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerWheel")
            .field("last_tick", &self.last_tick)
            .field("pending", &self.pending)
            .field("next_deadline", &self.next_deadline())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rec(e: u64, id: u32) -> WheelRec {
        WheelRec {
            expires_at: e,
            idx: id,
            gen: id,
        }
    }

    fn drain(w: &mut TimerWheel, now: u64) -> Vec<u32> {
        let mut due = Vec::new();
        w.advance(now, &mut due);
        let mut ids: Vec<u32> = due.into_iter().map(|(i, _)| i).collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn fires_at_exact_deadline_not_before() {
        let mut w = TimerWheel::new();
        w.insert(rec(10, 1));
        assert_eq!(drain(&mut w, 9), Vec::<u32>::new());
        assert_eq!(drain(&mut w, 10), vec![1]);
        assert!(w.is_empty());
    }

    #[test]
    fn unix_scale_jump_is_cheap_and_correct() {
        // last_tick 0 meeting absolute Unix deadlines: the bitmap jump
        // must cross ~1.7e9 empty ticks without iterating them.
        let mut w = TimerWheel::new();
        let base = 1_700_000_000u64;
        w.insert(rec(base + 5, 1));
        w.insert(rec(base + 70, 2));
        w.insert(rec(base + 5000, 3));
        assert_eq!(drain(&mut w, base), Vec::<u32>::new());
        assert_eq!(drain(&mut w, base + 5), vec![1]);
        assert_eq!(drain(&mut w, base + 100), vec![2]);
        assert_eq!(drain(&mut w, base + 10_000), vec![3]);
        assert!(w.is_empty());
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn past_deadlines_fire_on_next_advance() {
        let mut w = TimerWheel::new();
        drain(&mut w, 100);
        w.insert(rec(50, 7)); // already past
        assert_eq!(drain(&mut w, 101), vec![7]);
    }

    #[test]
    fn next_deadline_lower_bounds() {
        let mut w = TimerWheel::new();
        assert_eq!(w.next_deadline(), None);
        w.insert(rec(1000, 1));
        let nd = w.next_deadline().unwrap();
        assert!(nd <= 1000, "lower bound, got {nd}");
        assert!(nd > 0);
    }

    proptest! {
        /// The wheel delivers exactly the due set a sorted model would, for
        /// arbitrary interleavings of inserts and advances over Unix-scale
        /// and small timestamps.
        #[test]
        fn matches_sorted_model(
            ops in proptest::collection::vec(
                (0u8..2, 0u64..5000, any::<bool>()), 1..120)
        ) {
            let mut w = TimerWheel::new();
            let mut model: Vec<(u64, u32)> = Vec::new(); // (deadline, id)
            let mut now = 0u64;
            let mut next_id = 0u32;
            for (op, arg, unix_scale) in ops {
                let base = if unix_scale { 1_700_000_000 } else { 0 };
                match op {
                    0 => {
                        let e = base + arg;
                        w.insert(rec(e, next_id));
                        // The wheel clamps already-due deadlines forward.
                        model.push((e.max(now + 1), next_id));
                        next_id += 1;
                    }
                    _ => {
                        now = now.max(base + arg);
                        let mut due = Vec::new();
                        w.advance(now, &mut due);
                        let mut got: Vec<u32> =
                            due.into_iter().map(|(i, _)| i).collect();
                        got.sort_unstable();
                        let mut want: Vec<u32> = model
                            .iter()
                            .filter(|&&(e, _)| e <= now)
                            .map(|&(_, id)| id)
                            .collect();
                        want.sort_unstable();
                        model.retain(|&(e, _)| e > now);
                        prop_assert_eq!(got, want);
                        prop_assert_eq!(w.len(), model.len());
                    }
                }
            }
            // Final drain far in the future delivers everything left.
            let mut due = Vec::new();
            w.advance(u64::MAX, &mut due);
            prop_assert_eq!(due.len(), model.len());
        }
    }
}
