#!/usr/bin/env bash
# Full CI gate: build, tests, lints, formatting. Run before every push.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy -- -D warnings"
cargo clippy -- -D warnings

echo "==> cargo clippy --workspace -- -D warnings (includes spotcache-obs)"
cargo clippy --workspace -- -D warnings

echo "==> cargo doc --no-deps --workspace (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> obs snapshot smoke test"
snap="$(mktemp /tmp/obs_snapshot.XXXXXX.json)"
lg="$(mktemp /tmp/cache_loadgen.XXXXXX.json)"
trap 'rm -f "$snap" "$lg"' EXIT
cargo run --release -q -p spotcache-bench --bin obs_snapshot -- --metrics-out "$snap" \
    | grep -q "snapshot OK"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$snap" 2>/dev/null \
    || { echo "obs snapshot is not valid JSON"; exit 1; }

echo "==> cache_loadgen smoke test (incl. hot-key contention A/B)"
# The smoke run drives the hot-shard read-path A/B itself (4 readers,
# single hot shard) and asserts deferred >= inline in-process; re-check
# the extended snapshot schema and the A/B invariant here so the gate
# does not rely on the bin's asserts alone.
cargo run --release -q -p spotcache-bench --bin cache_loadgen -- --smoke --out "$lg" \
    | grep -q "loadgen OK"
python3 - "$lg" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
g = doc["gauges"]
for key in (
    "loadgen_baseline_ops_per_sec", "loadgen_pipelined_ops_per_sec",
    "loadgen_pipeline_speedup", "loadgen_hot_inline_ops_per_sec",
    "loadgen_hot_deferred_ops_per_sec", "loadgen_hot_speedup",
    "loadgen_hot_keys", "loadgen_hot_readers",
):
    assert key in g, f"BENCH_cache schema: missing gauge {key}"
assert g["loadgen_hot_readers"] >= 4, "hot-shard A/B needs >=4 reader threads"
assert g["loadgen_hot_deferred_ops_per_sec"] >= g["loadgen_hot_inline_ops_per_sec"], \
    "deferred read path lost the hot-key contention smoke"
PY

echo "==> trace smoke test (spans from every instrumented layer)"
tr="$(mktemp /tmp/trace_dump.XXXXXX.json)"
lgtr="$(mktemp /tmp/loadgen_trace.XXXXXX.json)"
trap 'rm -f "$snap" "$lg" "$tr" "$lgtr"' EXIT
# trace_dump exercises protocol, server, control, and recovery against one
# tracer and asserts >=1 span per layer itself; re-check the JSON and the
# per-layer coverage here so the gate does not rely on the bin's asserts.
cargo run --release -q -p spotcache-bench --bin trace_dump -- --smoke --out "$tr" \
    | grep -q "trace OK"
python3 - "$tr" <<'PY'
import json, sys
events = json.load(open(sys.argv[1]))
cats = {e["cat"] for e in events}
missing = {"protocol", "server", "control", "recovery"} - cats
assert not missing, f"trace is missing layers: {missing}"
PY
# The loadgen path with sampling on: trace must validate and cover the
# data plane while the run still passes its throughput floors. The
# scrape leg polls the live admin endpoint mid-run and must land its
# snapshots in the artifact.
cargo run --release -q -p spotcache-bench --bin cache_loadgen -- --smoke --out "$lg" \
    --trace-out "$lgtr" --scrape-interval 0.1 | grep -q "loadgen OK"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$lgtr" 2>/dev/null \
    || { echo "loadgen trace is not valid JSON"; exit 1; }
python3 - "$lg" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
scrapes = doc.get("scrapes")
assert scrapes, "--scrape-interval run must embed live /metrics snapshots"
assert all("t_s" in s and "cache_get_total" in s for s in scrapes), scrapes
PY

echo "==> telemetry endpoint smoke test (live /metrics /healthz /trace /journal)"
cargo run --release -q -p spotcache-bench --bin telemetry_smoke | grep -q "telemetry OK"

echo "==> checkpoint smoke test (cut -> corrupt-reject -> pristine restore)"
cargo run --release -q -p spotcache-bench --bin ckpt_smoke \
    | grep -q "checkpoint smoke OK"

echo "==> revocation drill smoke test (all strategies + link faults)"
dr="$(mktemp /tmp/revocation_drill.XXXXXX.json)"
drtr="$(mktemp /tmp/drill_trace.XXXXXX.json)"
trap 'rm -f "$snap" "$lg" "$tr" "$lgtr" "$dr" "$drtr"' EXIT
# The bin asserts the recovery orderings (per-strategy warned <= warning
# window, replay unwarned > warned, checkpoint beating replay) and the
# link-fault healing itself; re-check the artifact's schema and the
# headline invariants here so the gate does not rely on the bin's
# asserts alone.
cargo run --release -q -p spotcache-bench --bin revocation_drill -- --smoke --out "$dr" \
    --trace-out "$drtr" | grep -q "revocation drill OK"
# Cross-process stitching: the warned hybrid drill propagates one trace
# context across router -> primary -> replicator -> backup/replacement,
# so the dumped Chrome trace must hold one trace id spanning >=3 of the
# drill's logical processes.
python3 - "$drtr" <<'PY'
import json, sys
events = json.load(open(sys.argv[1]))
stitch = "d811000000000001"
pids = {e["pid"] for e in events
        if e.get("ph") == "X" and e.get("args", {}).get("trace") == stitch}
assert len(pids) >= 3, \
    f"stitched drill trace {stitch} must span >=3 logical processes, got {sorted(pids)}"
names = {e["args"]["name"] for e in events
         if e.get("ph") == "M" and e.get("name") == "process_name"}
assert {"primary-server", "backup-server", "replicator"} <= names, names
PY
python3 - "$dr" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "spotcache-drill-v2", doc.get("schema")
warning_s = doc["warning_window_s"]
for name in ("replay", "checkpoint", "hybrid"):
    strat = doc["strategies"][name]
    for drill in ("with_warning", "no_warning"):
        d = strat[drill]
        assert d["recovery_windows"] is not None, f"{name}/{drill}: never recovered"
        assert d["restore_items"] > 0, f"{name}/{drill}: restore moved nothing"
    assert strat["with_warning"]["recovery_s"] <= warning_s, \
        f"{name}: warned recovery must fit the warning window"
replay, ckpt = doc["strategies"]["replay"], doc["strategies"]["checkpoint"]
assert replay["no_warning"]["recovery_s"] > replay["with_warning"]["recovery_s"], \
    "unwarned replay should pay for the paced copy"
assert ckpt["no_warning"]["recovery_s"] <= replay["no_warning"]["recovery_s"], \
    "unwarned checkpoint recovery must not lose to unwarned replay"
race = doc["full_set_restore"]
assert race["checkpoint_s"] < race["replay_s"], \
    "full-set checkpoint restore must beat replay-at-pump-rate"
for fault in ("sever", "stall", "corrupt"):
    f = doc["link_faults"][fault]
    assert f["link_errors"] > 0 and f["healed"], f"link fault {fault}: not observed/healed"
PY

echo "==> cluster loadgen smoke test (reactor data plane, multi-node ring)"
cl="$(mktemp /tmp/cluster_loadgen.XXXXXX.json)"
trap 'rm -f "$snap" "$lg" "$tr" "$lgtr" "$dr" "$drtr" "$cl"' EXIT
# The bin asserts its own smoke throughput floor; re-check the artifact's
# schema and the cluster-shape invariants here so the gate does not rely
# on the bin's asserts alone. The scrape leg polls node 0's live admin
# endpoint mid-run.
cargo run --release -q -p spotcache-bench --bin cluster_loadgen -- --smoke --out "$cl" \
    --scrape-interval 0.1 | grep -q "cluster loadgen OK"
python3 - "$cl" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "spotcache-cluster-v1", doc.get("schema")
assert doc["nodes"] >= 2, "cluster smoke must span at least two nodes"
assert doc["workers_per_node"] >= 1, "resolved worker pool must be non-empty"
assert doc["pipelined"]["ops_per_sec"] > 0, "aggregate throughput missing"
assert len(doc["per_node"]) == doc["nodes"], "per-node stats incomplete"
for n in doc["per_node"]:
    assert n["connections"] > 0, f"node {n['node']}: no connections served"
assert doc.get("scrapes"), "--scrape-interval run must embed live /metrics snapshots"
PY

echo "==> storm drill smoke test (correlated revocation waves, decay curves)"
st="$(mktemp /tmp/storm_drill.XXXXXX.json)"
trap 'rm -f "$snap" "$lg" "$tr" "$lgtr" "$dr" "$drtr" "$cl" "$st"' EXIT
# The bin asserts the recovery-ordering invariants itself (warned <=
# unwarned for the identical kill-set, no permanent floor loss, trigger
# before the first burn breach); re-check the artifact's schema and the
# headline invariants here so the gate does not rely on the bin's
# asserts alone.
cargo run --release -q -p spotcache-bench --bin storm_drill -- --smoke --out "$st" \
    | grep -q "storm drill OK"
python3 - "$st" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "spotcache-storm-v1", doc.get("schema")
scenarios = doc["scenarios"]
expect = {"warned", "unwarned", "cascade", "multi_router_degraded"}
assert expect <= set(scenarios), f"missing scenarios: {expect - set(scenarios)}"
rf = doc["recovery_fraction"]
for name, sc in scenarios.items():
    series = sc["series"]
    for curve in ("fresh", "served", "stale", "burn", "degraded"):
        pts = series[curve]
        assert pts, f"{name}: empty {curve} series"
        ts = [t for t, _ in pts]
        assert ts == sorted(ts) and len(ts) == len(set(ts)), \
            f"{name}: {curve} timestamps not strictly monotone"
    assert sc["recovery_windows"] is not None, f"{name}: never recovered"
    assert sc["storm_trigger_window"] is not None, f"{name}: detector never fired"
    assert sc["storm_trigger_latency_windows"] <= doc["storm_detector"]["window"], \
        f"{name}: trigger latency exceeds the detector window"
    assert sc["final_fresh_rate"] >= rf * sc["steady_fresh_rate"], \
        f"{name}: permanent hit-rate floor loss"
    if sc["burn_breaches"]:
        assert sc["storm_trigger_window"] <= sc["burn_breaches"][0][0], \
            f"{name}: storm trigger lagged the first SLO burn breach"
    assert len(sc["killed"]) == len(sc["kill_windows"]), f"{name}: kill bookkeeping"
w, u = scenarios["warned"], scenarios["unwarned"]
assert w["killed"] == u["killed"] and w["kill_windows"] == u["kill_windows"], \
    "warned/unwarned runs must face the identical storm"
assert w["recovery_windows"] <= u["recovery_windows"], \
    "warned recovery must not exceed unwarned for the same kill-set"
assert scenarios["multi_router_degraded"]["max_degraded_routers"] >= 2, \
    "multi-router scenario must degrade >=2 routers simultaneously"
assert len(scenarios["cascade"]["killed"]) > len(w["killed"]), \
    "cascade must out-kill a single wave"
PY

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI OK"
