#!/usr/bin/env bash
# Full CI gate: build, tests, lints, formatting. Run before every push.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy -- -D warnings"
cargo clippy -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI OK"
