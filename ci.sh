#!/usr/bin/env bash
# Full CI gate: build, tests, lints, formatting. Run before every push.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy -- -D warnings"
cargo clippy -- -D warnings

echo "==> cargo clippy --workspace -- -D warnings (includes spotcache-obs)"
cargo clippy --workspace -- -D warnings

echo "==> obs snapshot smoke test"
snap="$(mktemp /tmp/obs_snapshot.XXXXXX.json)"
lg="$(mktemp /tmp/cache_loadgen.XXXXXX.json)"
trap 'rm -f "$snap" "$lg"' EXIT
cargo run --release -q -p spotcache-bench --bin obs_snapshot -- --metrics-out "$snap" \
    | grep -q "snapshot OK"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$snap" 2>/dev/null \
    || { echo "obs snapshot is not valid JSON"; exit 1; }

echo "==> cache_loadgen smoke test"
cargo run --release -q -p spotcache-bench --bin cache_loadgen -- --smoke --out "$lg" \
    | grep -q "loadgen OK"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$lg" 2>/dev/null \
    || { echo "loadgen snapshot is not valid JSON"; exit 1; }

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI OK"
