#![warn(missing_docs)]

//! Umbrella crate for the `spotcache` workspace.
//!
//! `spotcache` is a from-scratch Rust reproduction of *"Exploiting Spot and
//! Burstable Instances for Improving the Cost-efficacy of In-Memory Caches
//! on the Public Cloud"* (EuroSys 2017). It re-exports every subsystem crate
//! so examples and downstream users can depend on a single package:
//!
//! * [`cloud`] — EC2 substrate: catalog, pricing, spot markets, burstable
//!   token buckets, VM lifecycle, billing.
//! * [`spotmodel`] — spot lifetime/price predictors and their CDF baseline.
//! * [`cache`] — the memcached substrate (sharded LRU store).
//! * [`router`] — the mcrouter substrate (consistent hashing, prefix
//!   routing, hot-key partitioning, failover).
//! * [`workload`] — YCSB-style Zipfian and Wikipedia-shaped workloads.
//! * [`optimizer`] — the paper's online cost-minimizing procurement problem.
//! * [`sim`] — discrete-event cluster simulation and recovery timelines.
//! * [`core`] — the global controller and the six procurement approaches.
//! * [`obs`] — metrics registry, structured event journal, and exporters.
//!
//! # Examples
//!
//! ```
//! use spotcache::cloud::{tracegen, Bid};
//! use spotcache::spotmodel::lifetime::LifetimeModel;
//!
//! let trace = &tracegen::paper_traces(30)[0];
//! let model = LifetimeModel::new(7 * spotcache::cloud::DAY, 0.05);
//! let pred = model.predict(trace, 10 * spotcache::cloud::DAY, Bid(trace.od_price));
//! assert!(pred.is_some());
//! ```

pub use spotcache_cache as cache;
pub use spotcache_cloud as cloud;
pub use spotcache_core as core;
pub use spotcache_obs as obs;
pub use spotcache_optimizer as optimizer;
pub use spotcache_router as router;
pub use spotcache_sim as sim;
pub use spotcache_spotmodel as spotmodel;
pub use spotcache_workload as workload;
