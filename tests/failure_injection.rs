//! Failure-injection integration tests: correlated multi-market
//! revocations, depleted backups, flash crowds colliding with failures —
//! the unhappy paths a production deployment actually meets.

use spotcache::cloud::catalog::find_type;
use spotcache::cloud::tracegen::{correlated_paper_traces, paper_traces};
use spotcache::core::cluster::{LiveCluster, LiveClusterConfig};
use spotcache::core::reactive::ReactiveConfig;
use spotcache::core::simulation::{simulate, FlashCrowd, SimConfig};
use spotcache::core::Approach;
use spotcache::sim::{simulate_recovery, BackupChoice, RecoveryConfig};

/// Correlated regional shocks take several markets down at once; every
/// approach must still complete its 90 days without error, and the cost
/// ordering must survive.
#[test]
fn correlated_markets_do_not_break_any_approach() {
    let traces = correlated_paper_traces(21);
    let mut costs = std::collections::HashMap::new();
    for a in Approach::ALL {
        let mut cfg = SimConfig::paper_default(a, 320_000.0, 60.0, 0.99);
        cfg.days = 21;
        let r = simulate(&cfg, &traces).unwrap_or_else(|e| panic!("{a}: {e}"));
        costs.insert(a, r.total_cost());
    }
    assert!(costs[&Approach::PropNoBackup] < costs[&Approach::OdOnly]);
    assert!(costs[&Approach::OdOnly] <= costs[&Approach::OdPeak]);
}

/// Correlated failures hurt more than independent ones at equal ζ — the
/// motivation for the availability floor.
#[test]
fn correlated_failures_hurt_more_than_independent() {
    let run = |traces: &[spotcache::cloud::SpotTrace]| {
        let mut cfg = SimConfig::paper_default(Approach::PropNoBackup, 500_000.0, 100.0, 2.0);
        cfg.days = 21;
        cfg.controller.cost.zeta = 0.0;
        simulate(&cfg, traces).unwrap()
    };
    let indep = run(&paper_traces(21));
    let corr = run(&correlated_paper_traces(21));
    let worst = |r: &spotcache::core::SimResult| {
        r.slots
            .iter()
            .map(|h| h.affected_frac)
            .fold(0.0f64, f64::max)
    };
    assert!(
        worst(&corr) >= worst(&indep),
        "correlated worst-hour {} vs independent {}",
        worst(&corr),
        worst(&indep)
    );
}

/// A backup that recently absorbed a failure (depleted buckets) recovers
/// like a regular instance at its baseline, not like a fresh burstable.
#[test]
fn depleted_backup_degrades_gracefully() {
    let t2 = find_type("t2.medium").unwrap();
    let fresh = simulate_recovery(&RecoveryConfig::figure11(BackupChoice::Instance(t2)));
    let mut drained_cfg = RecoveryConfig::figure11(BackupChoice::Instance(t2));
    drained_cfg.backup_credits_fraction = 0.0;
    let drained = simulate_recovery(&drained_cfg);
    let f = fresh.recovered_at.expect("fresh backup recovers");
    if let Some(d) = drained.recovered_at {
        // (`None` is even slower: not recovered within the horizon.)
        assert!(d > f, "drained {d} should be slower than fresh {f}");
    }
    // But a drained backup still converges monotonically (no divergence).
    for w in drained.points.windows(2) {
        assert!(w[1].warmed_mass >= w[0].warmed_mass - 1e-9);
    }
}

/// Flash crowd and spot failures together: the reactive element must not
/// mask failure accounting, and the simulation must stay consistent.
#[test]
fn flash_crowd_with_failures_stays_consistent() {
    let traces = correlated_paper_traces(21);
    let mut cfg = SimConfig::paper_default(Approach::Prop, 320_000.0, 60.0, 0.99);
    cfg.days = 21;
    cfg.flash_crowds = vec![FlashCrowd {
        start_hour: 12 * 24,
        duration_hours: 4,
        multiplier: 2.5,
    }];
    cfg.reactive = Some(ReactiveConfig::default());
    let r = simulate(&cfg, &traces).unwrap();
    // Books balance: per-hour costs sum to the ledger.
    let sum: f64 = r.slots.iter().map(|h| h.cost).sum();
    assert!((sum - r.total_cost()).abs() < 1e-6);
    for h in &r.slots {
        assert!((0.0..=1.0).contains(&h.affected_frac));
        assert!(h.cost >= 0.0);
    }
}

/// The live cluster under correlated markets: repeated revocations across
/// replans never leave routing pointing at dead nodes. Driven through the
/// shared control loop, exactly like production.
#[test]
fn live_cluster_survives_correlated_revocations() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spotcache::cloud::{DAY, HOUR};
    use spotcache::core::cluster::LiveSubstrate;
    use spotcache::core::{ControlLoop, ControllerConfig, Demand, GlobalController, Schedule};
    use spotcache::workload::RequestGenerator;

    let mut cluster = LiveCluster::new(
        LiveClusterConfig::scaled_default(Approach::Prop),
        correlated_paper_traces(40),
    );
    let gen = RequestGenerator::read_only(30_000, 1.2);
    let mut rng = StdRng::seed_from_u64(17);
    cluster.advance_to(10 * DAY);
    let substrate = LiveSubstrate::new(
        &mut cluster,
        Schedule::slotted(10 * DAY, 48, HOUR),
        Box::new(|_t| Demand {
            rate: 80_000.0,
            wss_gb: 15.0,
        }),
        Box::new(move |cluster, _slot| {
            for _ in 0..2_000 {
                cluster.read(&gen.next_request(&mut rng).key_bytes());
            }
        }),
    );
    let controller = GlobalController::new(ControllerConfig::paper_default(Approach::Prop));
    let metrics = ControlLoop::new(controller, 1.2).run(substrate).unwrap();
    assert_eq!(metrics.serve.requests(), 48 * 2_000);
    assert_eq!(metrics.slots.len(), 48);
    // Whatever failed, most traffic must still have been served from cache.
    assert!(
        metrics.serve.hit_rate() > 0.5,
        "hit rate {}",
        metrics.serve.hit_rate()
    );
    assert!(metrics.total_cost() > 0.0);
}
