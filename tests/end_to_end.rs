//! End-to-end integration: the cloud provider, cache nodes, partitioner,
//! and load balancer wired together the way the paper's prototype wires
//! memcached, mcrouter, and EC2.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use spotcache::cache::CacheNode;
use spotcache::cloud::billing::CostCategory;
use spotcache::cloud::catalog::find_type;
use spotcache::cloud::provider::{CloudProvider, Lease, ProviderEvent};
use spotcache::cloud::spot::{Bid, MarketId, SpotTrace};
use spotcache::cloud::TRACE_STEP;
use spotcache::router::balancer::{LoadBalancer, NodeWeights, Route};
use spotcache::router::partitioner::KeyPartitioner;
use spotcache::workload::RequestGenerator;

fn market() -> MarketId {
    MarketId::new("m4.large", "us-east-1d")
}

/// Cheap for 20 steps, spike for 3, cheap again.
fn provider() -> CloudProvider {
    let mut prices = vec![0.03; 20];
    prices.extend(vec![0.5; 3]);
    prices.extend(vec![0.03; 50]);
    CloudProvider::new(vec![SpotTrace::new(market(), 0.12, prices)]).with_launch_delay(0)
}

struct Cluster {
    nodes: HashMap<u64, CacheNode>,
    lb: LoadBalancer,
    partitioner: KeyPartitioner,
    backend_reads: u64,
}

impl Cluster {
    fn read(&mut self, key: &[u8]) {
        self.partitioner.observe(key);
        match self.lb.route_read(self.partitioner.pool(key), key) {
            Route::Node(n) | Route::Backup(n) => {
                let node = self.nodes.get(&n).expect("routed to known node");
                if node.store.get(key).is_none() {
                    self.backend_reads += 1;
                    node.store.set(key.to_vec(), vec![0u8; 128]);
                }
            }
            Route::Backend => self.backend_reads += 1,
        }
    }

    fn write(&mut self, key: &[u8]) {
        self.partitioner.observe(key);
        for t in self.lb.route_write(self.partitioner.pool(key), key) {
            if let Route::Node(n) | Route::Backup(n) = t {
                self.nodes[&n].store.set(key.to_vec(), vec![0u8; 128]);
            }
        }
    }
}

#[test]
fn full_stack_survives_a_revocation() {
    let mut cloud = provider();
    let m4 = find_type("m4.large").unwrap();
    let od = cloud
        .launch(m4, Lease::OnDemand, CostCategory::OnDemand)
        .unwrap();
    let spot = cloud
        .launch(
            m4,
            Lease::Spot {
                market: market(),
                bid: Bid(0.12),
            },
            CostCategory::Spot,
        )
        .unwrap();
    let backup = cloud
        .launch(
            find_type("t2.medium").unwrap(),
            Lease::OnDemand,
            CostCategory::Backup,
        )
        .unwrap();

    let mut nodes = HashMap::new();
    for id in [od, spot, backup] {
        nodes.insert(id, CacheNode::for_tests(id, 32 << 20));
    }
    let mut lb = LoadBalancer::new();
    lb.set_weights(&[
        NodeWeights {
            node: od,
            hot: 0.5,
            cold: 0.2,
            is_spot: false,
        },
        NodeWeights {
            node: spot,
            hot: 0.5,
            cold: 0.8,
            is_spot: true,
        },
    ]);
    lb.set_backups(&[backup]);
    let mut cluster = Cluster {
        nodes,
        lb,
        partitioner: KeyPartitioner::new(50_000, 8),
        backend_reads: 0,
    };

    // Warm phase: mixed traffic while the spot market is cheap.
    let gen = RequestGenerator::new(5_000, 1.2, 0.9);
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..60_000 {
        let req = gen.next_request(&mut rng);
        if req.is_read {
            cluster.read(&req.key_bytes());
        } else {
            cluster.write(&req.key_bytes());
        }
    }
    let warm_backend = cluster.backend_reads;
    assert!(
        !cluster.nodes[&spot].store.is_empty(),
        "spot node holds data"
    );
    assert!(
        !cluster.nodes[&backup].store.is_empty(),
        "backup received write fan-out"
    );

    // The spike at step 20 revokes the spot instance (warning at the spike
    // onset, revocation 120 s later — both inside this advance window).
    let events = cloud.advance_to(22 * TRACE_STEP);
    let warn_at = events
        .iter()
        .find_map(|e| match e {
            ProviderEvent::RevocationWarning { id, at, .. } if *id == spot => Some(*at),
            _ => None,
        })
        .expect("provider warns before revoking");
    let revoke_at = events
        .iter()
        .find_map(|e| match e {
            ProviderEvent::Revoked { id, at } if *id == spot => Some(*at),
            _ => None,
        })
        .expect("spot instance revoked during the spike");
    assert_eq!(revoke_at, warn_at + spotcache::cloud::REVOCATION_WARNING);

    // React: wipe the node, mark it failed.
    cluster.nodes.get_mut(&spot).unwrap().wipe();
    cluster.lb.mark_failed(spot);

    // Hot keys that lived on the spot node are still served (backup);
    // others fall back to the backend; nothing panics or routes to the
    // dead node.
    let mut backup_hits = 0;
    for _ in 0..20_000 {
        let req = gen.next_request(&mut rng);
        let key = req.key_bytes();
        if let Route::Backup(b) = cluster.lb.route_read(cluster.partitioner.pool(&key), &key) {
            assert_eq!(b, backup);
            if cluster.nodes[&b].store.get(&key).is_some() {
                backup_hits += 1;
            }
        }
        cluster.read(&key);
    }
    assert!(
        backup_hits > 0,
        "hot content is actually present on the backup"
    );
    assert!(
        cluster.backend_reads > warm_backend,
        "cold content pays backend misses"
    );

    // Billing recorded every category.
    let ledger = cloud.ledger();
    assert!(ledger.total(CostCategory::OnDemand) > 0.0);
    assert!(ledger.total(CostCategory::Spot) > 0.0);
    assert!(ledger.total(CostCategory::Backup) > 0.0);
    // Spot was billed at spot prices: strictly cheaper than the same
    // duration on demand.
    assert!(ledger.total(CostCategory::Spot) < ledger.total(CostCategory::OnDemand));
}

#[test]
fn replacement_redirect_restores_service() {
    let mut cloud = provider();
    let m4 = find_type("m4.large").unwrap();
    let spot = cloud
        .launch(
            m4,
            Lease::Spot {
                market: market(),
                bid: Bid(0.12),
            },
            CostCategory::Spot,
        )
        .unwrap();
    let mut nodes = HashMap::new();
    nodes.insert(spot, CacheNode::for_tests(spot, 32 << 20));

    let mut lb = LoadBalancer::new();
    lb.set_weights(&[NodeWeights {
        node: spot,
        hot: 1.0,
        cold: 1.0,
        is_spot: true,
    }]);
    let mut cluster = Cluster {
        nodes,
        lb,
        partitioner: KeyPartitioner::new(10_000, 4),
        backend_reads: 0,
    };
    let gen = RequestGenerator::read_only(1_000, 0.99);
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..5_000 {
        cluster.read(&gen.next_request(&mut rng).key_bytes());
    }

    // Revocation: launch a replacement (on-demand) and redirect.
    cloud.advance_to(22 * TRACE_STEP);
    let replacement = cloud
        .launch(m4, Lease::OnDemand, CostCategory::OnDemand)
        .unwrap();
    cluster
        .nodes
        .insert(replacement, CacheNode::for_tests(replacement, 32 << 20));
    cluster.lb.mark_failed(spot);
    cluster.lb.redirect(spot, replacement);

    let before = cluster.backend_reads;
    for _ in 0..5_000 {
        cluster.read(&gen.next_request(&mut rng).key_bytes());
    }
    // The replacement warms organically: misses happen but service works
    // and the replacement fills up.
    assert!(!cluster.nodes[&replacement].store.is_empty());
    assert!(
        cluster.backend_reads > before,
        "cold replacement pays misses"
    );
    let refill = cluster.backend_reads;
    for _ in 0..5_000 {
        cluster.read(&gen.next_request(&mut rng).key_bytes());
    }
    let late_misses = cluster.backend_reads - refill;
    assert!(
        late_misses < (refill - before) / 2,
        "miss rate falls as the replacement warms: {late_misses} vs {}",
        refill - before
    );
}
