//! Cross-crate property tests: invariants that must hold for arbitrary
//! inputs, spanning the cloud substrate, the models, and the loaders.

use proptest::prelude::*;

use spotcache::cloud::billing::CostCategory;
use spotcache::cloud::catalog::find_type;
use spotcache::cloud::provider::{CloudProvider, Lease};
use spotcache::cloud::spot::{Bid, MarketId, SpotTrace};
use spotcache::cloud::tracefile;
use spotcache::spotmodel::lifetime::LifetimeModel;
use spotcache::spotmodel::runs::below_bid_runs;
use spotcache::workload::zipf::PopularityModel;

fn market() -> MarketId {
    MarketId::new("m4.large", "us-east-1d")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Run extraction partitions the below-bid samples exactly: total run
    /// length equals step × (count of covered samples), and runs never
    /// overlap.
    #[test]
    fn run_extraction_partitions_samples(
        prices in proptest::collection::vec(0.01f64..0.5, 10..200),
        bid in 0.05f64..0.4,
    ) {
        let t = SpotTrace::new(market(), 0.12, prices.clone());
        let runs = below_bid_runs(&t, 0, t.end(), Bid(bid));
        let covered = prices.iter().filter(|&&p| p <= bid + 1e-12).count() as u64;
        let total: u64 = runs.iter().map(|r| r.len).sum();
        prop_assert_eq!(total, covered * t.step);
        for w in runs.windows(2) {
            prop_assert!(w[0].end() < w[1].start, "runs must be separated");
        }
        // Every run's average price is at or below the bid.
        for r in &runs {
            prop_assert!(r.avg_price <= bid + 1e-9);
        }
    }

    /// The lifetime prediction never exceeds the window and is never
    /// negative, for any price series.
    #[test]
    fn lifetime_prediction_is_bounded(
        prices in proptest::collection::vec(0.01f64..1.0, 50..300),
        q in 0.0f64..1.0,
    ) {
        let t = SpotTrace::new(market(), 0.12, prices);
        let window = t.duration();
        let m = LifetimeModel::new(window, q);
        if let Some(pred) = m.predict(&t, t.end(), Bid(0.12)) {
            prop_assert!(pred >= 0.0);
            prop_assert!(pred <= window as f64 + 1e-9);
        }
    }

    /// The popularity CDF is monotone in both arguments and its inverse is
    /// consistent: `access_mass(hot_fraction(m)) >= m`.
    #[test]
    fn popularity_model_inverse_consistency(
        n in 100u64..1_000_000,
        theta in 0.1f64..2.5,
        mass in 0.05f64..0.99,
    ) {
        let m = PopularityModel::new(n, theta);
        let h = m.hot_fraction(mass);
        prop_assert!((0.0..=1.0).contains(&h));
        prop_assert!(m.access_mass(h) >= mass - 1e-6);
        // Monotonicity in the fraction argument.
        prop_assert!(m.access_mass(h) <= m.access_mass((h + 0.1).min(1.0)) + 1e-9);
    }

    /// Provider billing conservation: the ledger total equals the exact
    /// price integral of usable time, for arbitrary price series and
    /// advance patterns.
    #[test]
    fn billing_matches_price_integral(
        prices in proptest::collection::vec(0.01f64..0.5, 20..60),
        advances in proptest::collection::vec(1u64..2_000, 1..8),
    ) {
        let trace = SpotTrace::new(market(), 0.12, prices.clone());
        let step = trace.step;
        let mut p = CloudProvider::new(vec![trace]).with_launch_delay(0);
        let itype = find_type("m4.large").unwrap();
        p.launch(itype, Lease::Spot { market: market(), bid: Bid(10.0) }, CostCategory::Spot)
            .unwrap();
        let mut t = 0u64;
        let horizon = prices.len() as u64 * step;
        for a in advances {
            t = (t + a).min(horizon);
            p.advance_to(t);
        }
        p.advance_to(horizon);
        // Exact integral: each full sample interval at its price.
        let expect: f64 = prices.iter().map(|pr| pr * step as f64 / 3_600.0).sum();
        let got = p.ledger().total(CostCategory::Spot);
        prop_assert!((got - expect).abs() < 1e-6, "got {got}, want {expect}");
    }

    /// Trace CSV roundtrip: parse(to_csv(t)) == t for arbitrary traces.
    #[test]
    fn trace_csv_roundtrip(prices in proptest::collection::vec(0.0f64..2.0, 1..100)) {
        // Quantize like EC2 does so the text roundtrip is exact.
        let prices: Vec<f64> = prices.iter().map(|p| (p * 1e4).round() / 1e4).collect();
        let t = SpotTrace::new(market(), 0.12, prices);
        let back = tracefile::parse_csv(market(), 0.12, &tracefile::to_csv(&t)).unwrap();
        prop_assert_eq!(t.prices, back.prices);
        prop_assert_eq!(t.start, back.start);
        prop_assert_eq!(t.step, back.step);
    }
}
