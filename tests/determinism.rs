//! Determinism audit: the entire pipeline — trace generation, workload
//! synthesis, planning, simulation, prototype emulation, recovery — must be
//! a pure function of its seeds. Every number in EXPERIMENTS.md depends on
//! this.

use spotcache::cloud::catalog::find_type;
use spotcache::cloud::tracegen::{correlated_paper_traces, paper_traces};
use spotcache::core::controller::ControllerConfig;
use spotcache::core::prototype::{run_prototype, PrototypeConfig};
use spotcache::core::simulation::{simulate, SimConfig};
use spotcache::core::Approach;
use spotcache::sim::{simulate_recovery, BackupChoice, RecoveryConfig};

#[test]
fn traces_are_pure_functions_of_seeds() {
    assert_eq!(
        paper_traces(15)
            .iter()
            .map(|t| t.prices.clone())
            .collect::<Vec<_>>(),
        paper_traces(15)
            .iter()
            .map(|t| t.prices.clone())
            .collect::<Vec<_>>(),
    );
    assert_eq!(
        correlated_paper_traces(15)[1].prices,
        correlated_paper_traces(15)[1].prices,
    );
}

#[test]
fn long_simulation_is_deterministic() {
    let run = || {
        let mut cfg = SimConfig::paper_default(Approach::Prop, 320_000.0, 60.0, 1.2);
        cfg.days = 14;
        let r = simulate(&cfg, &paper_traces(14)).unwrap();
        (
            r.total_cost().to_bits(),
            r.revocations,
            r.hours.iter().map(|h| h.cost.to_bits()).collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn prototype_is_deterministic() {
    let market = paper_traces(60).remove(1);
    let run = || {
        let cfg = PrototypeConfig {
            controller: ControllerConfig::paper_default(Approach::PropNoBackup),
            start_day: 45,
            peak_rate: 160_000.0,
            max_wss_gb: 30.0,
            theta: 1.2,
            seed: 5,
        };
        let r = run_prototype(&cfg, &market).unwrap();
        (
            r.failures,
            r.overall.count(),
            r.minutes
                .iter()
                .map(|m| m.avg_us.to_bits())
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn recovery_timeline_is_deterministic() {
    let run = || {
        let cfg = RecoveryConfig::figure11(BackupChoice::Instance(find_type("t2.medium").unwrap()));
        let tl = simulate_recovery(&cfg);
        (
            tl.recovered_at,
            tl.points
                .iter()
                .map(|p| (p.avg_us.to_bits(), p.p95_us.to_bits()))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}
