//! Determinism audit: the entire pipeline — trace generation, workload
//! synthesis, planning, simulation, prototype emulation, recovery — must be
//! a pure function of its seeds. Every number in EXPERIMENTS.md depends on
//! this.

use spotcache::cloud::catalog::find_type;
use spotcache::cloud::tracegen::{correlated_paper_traces, paper_traces};
use spotcache::core::controller::{ControllerConfig, GlobalController};
use spotcache::core::prototype::{run_prototype, PrototypeConfig};
use spotcache::core::simulation::{simulate, HourlySim, SimConfig};
use spotcache::core::{Approach, ControlLoop};
use spotcache::sim::{simulate_recovery, BackupChoice, EventQueue, RecoveryConfig};

#[test]
fn traces_are_pure_functions_of_seeds() {
    assert_eq!(
        paper_traces(15)
            .iter()
            .map(|t| t.prices.clone())
            .collect::<Vec<_>>(),
        paper_traces(15)
            .iter()
            .map(|t| t.prices.clone())
            .collect::<Vec<_>>(),
    );
    assert_eq!(
        correlated_paper_traces(15)[1].prices,
        correlated_paper_traces(15)[1].prices,
    );
}

#[test]
fn long_simulation_is_deterministic() {
    let run = || {
        let mut cfg = SimConfig::paper_default(Approach::Prop, 320_000.0, 60.0, 1.2);
        cfg.days = 14;
        let r = simulate(&cfg, &paper_traces(14)).unwrap();
        (
            r.total_cost().to_bits(),
            r.revocations,
            r.slots.iter().map(|h| h.cost.to_bits()).collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn prototype_is_deterministic() {
    let market = paper_traces(60).remove(1);
    let run = || {
        let cfg = PrototypeConfig {
            controller: ControllerConfig::paper_default(Approach::PropNoBackup),
            start_day: 45,
            peak_rate: 160_000.0,
            max_wss_gb: 30.0,
            theta: 1.2,
            seed: 5,
        };
        let r = run_prototype(&cfg, &market).unwrap();
        (
            r.revocations,
            r.latency.count(),
            r.samples
                .iter()
                .map(|m| m.avg_us.to_bits())
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

/// Driving [`HourlySim`] explicitly through the shared [`ControlLoop`] —
/// rather than the `simulate` convenience wrapper — must also be a pure
/// function of the seed: byte-identical costs, slot records, violations.
#[test]
fn control_loop_is_deterministic() {
    let run = || {
        let mut cfg = SimConfig::paper_default(Approach::OdSpotSep, 320_000.0, 60.0, 1.2);
        cfg.days = 14;
        cfg.seed = 0xD15C;
        let controller = GlobalController::new(cfg.controller.clone());
        let r = ControlLoop::new(controller, cfg.theta)
            .run(HourlySim::new(cfg, paper_traces(14)))
            .unwrap();
        (
            r.total_cost().to_bits(),
            r.violated_day_frac().to_bits(),
            r.revocations,
            r.slots
                .iter()
                .map(|h| (h.cost.to_bits(), h.affected_frac.to_bits(), h.revoked))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig { cases: 64, ..Default::default() })]

    /// The event engine under the control loop must order events by time
    /// with a stable FIFO tiebreak: events that share a timestamp pop in
    /// insertion order, whatever the insertion pattern. The control loop
    /// relies on this to process each slot's replan before its steps.
    #[test]
    fn event_queue_ordering_is_stable_under_ties(
        times in proptest::collection::vec(0u64..8, 1..100),
    ) {
        use proptest::prelude::*;
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut popped = Vec::new();
        while let Some(ev) = q.pop() {
            popped.push(ev);
        }
        prop_assert_eq!(popped.len(), times.len());
        // A stable sort of the insertion order by time is exactly
        // "time-ordered with FIFO ties" — the queue must match it.
        let mut want: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        want.sort_by_key(|&(t, _)| t);
        prop_assert_eq!(popped, want);
    }
}

#[test]
fn recovery_timeline_is_deterministic() {
    let run = || {
        let cfg = RecoveryConfig::figure11(BackupChoice::Instance(find_type("t2.medium").unwrap()));
        let tl = simulate_recovery(&cfg);
        (
            tl.recovered_at,
            tl.points
                .iter()
                .map(|p| (p.avg_us.to_bits(), p.p95_us.to_bits()))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}
