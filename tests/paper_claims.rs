//! Integration tests asserting the paper's headline qualitative claims on
//! shortened (but otherwise faithful) versions of the evaluation.

use spotcache::cloud::billing::CostCategory;
use spotcache::cloud::catalog::find_type;
use spotcache::cloud::spot::Bid;
use spotcache::cloud::tracegen::paper_traces;
use spotcache::cloud::DAY;
use spotcache::core::simulation::{simulate, SimConfig};
use spotcache::core::Approach;
use spotcache::sim::{simulate_recovery, BackupChoice, RecoveryConfig};
use spotcache::spotmodel::assess::assess_hourly;
use spotcache::spotmodel::{CdfPredictor, SpotPredictor, TemporalPredictor};

fn quick_sim(approach: Approach, theta: f64) -> spotcache::core::SimResult {
    let mut cfg = SimConfig::paper_default(approach, 500_000.0, 100.0, theta);
    cfg.days = 21;
    simulate(&cfg, &paper_traces(21)).expect("simulation")
}

/// Abstract claim (Section 1): hot-cold mixing with our spot modeling
/// improves cost savings by 50-80% versus regular instances only.
#[test]
fn headline_savings_50_to_80_percent() {
    for theta in [0.99, 2.0] {
        let od = quick_sim(Approach::OdOnly, theta);
        let prop = quick_sim(Approach::PropNoBackup, theta);
        let savings = 1.0 - prop.total_cost() / od.total_cost();
        assert!(
            (0.5..=0.85).contains(&savings),
            "theta {theta}: savings {savings}"
        );
    }
}

/// Section 5.2: Prop_NoBackup matches OD+Spot_CDF's cost while violating
/// the performance target on far fewer days.
#[test]
fn our_modeling_cuts_violations_at_comparable_cost() {
    let traces = paper_traces(21);
    let mut ratios = Vec::new();
    // Single-market setting, as in Figure 7.
    for trace in &traces {
        let single = std::slice::from_ref(trace);
        let mut ours_cfg = SimConfig::paper_default(Approach::PropNoBackup, 500_000.0, 100.0, 2.0);
        ours_cfg.days = 21;
        let ours = simulate(&ours_cfg, single).unwrap();
        let mut cdf_cfg = SimConfig::paper_default(Approach::OdSpotCdf, 500_000.0, 100.0, 2.0);
        cdf_cfg.days = 21;
        let cdf = simulate(&cdf_cfg, single).unwrap();
        assert!(
            ours.violated_day_frac() <= cdf.violated_day_frac(),
            "{}: ours {} vs cdf {}",
            trace.market.short_label(),
            ours.violated_day_frac(),
            cdf.violated_day_frac()
        );
        assert!(
            ours.revocations <= cdf.revocations,
            "{}: revocations {} vs {}",
            trace.market.short_label(),
            ours.revocations,
            cdf.revocations
        );
        // Comparable cost per market (spiky markets can differ more on a
        // short horizon since ours buys safety).
        let ratio = ours.total_cost() / cdf.total_cost();
        assert!(
            ratio < 1.8,
            "{}: cost ratio {ratio}",
            trace.market.short_label()
        );
        ratios.push(ratio);
    }
    // Aggregated, the costs are close (paper: within ~5%; our shortened
    // horizon and synthetic markets allow a wider band).
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(mean < 1.35, "mean cost ratio {mean}");
}

/// Section 5.5: OD+Spot_Sep can cost *more* than ODOnly at high skew.
#[test]
fn separation_backfires_at_zipf_2() {
    let od = quick_sim(Approach::OdOnly, 2.0);
    let sep = quick_sim(Approach::OdSpotSep, 2.0);
    assert!(
        sep.total_cost() >= 0.95 * od.total_cost(),
        "sep {} vs od {}",
        sep.total_cost(),
        od.total_cost()
    );
    // ... while mixing still saves big.
    let prop = quick_sim(Approach::PropNoBackup, 2.0);
    assert!(prop.total_cost() < 0.5 * sep.total_cost());
}

/// Section 5.5: the backup's cost is visible at low skew, negligible at
/// high skew.
#[test]
fn backup_cost_shrinks_with_skew() {
    let low = quick_sim(Approach::Prop, 0.99);
    let high = quick_sim(Approach::Prop, 2.0);
    let share =
        |r: &spotcache::core::SimResult| r.ledger.total(CostCategory::Backup) / r.total_cost();
    assert!(
        share(&low) > 2.0 * share(&high),
        "{} vs {}",
        share(&low),
        share(&high)
    );
    assert!(
        share(&high) < 0.10,
        "high-skew backup share {}",
        share(&high)
    );
}

/// Abstract claim: the burstable backup improves the 95th-percentile
/// latency during failure recovery by ~25% versus a regular-instance
/// backup of similar price (m3.medium).
#[test]
fn burstable_backup_beats_regular_backup_tail() {
    let t2 = simulate_recovery(&RecoveryConfig::figure11(BackupChoice::Instance(
        find_type("t2.medium").unwrap(),
    )));
    let m3 = simulate_recovery(&RecoveryConfig::figure11(BackupChoice::Instance(
        find_type("m3.medium").unwrap(),
    )));
    let improvement = 1.0 - t2.overall_p95() / m3.overall_p95();
    assert!(
        (0.10..=0.60).contains(&improvement),
        "p95 improvement {improvement}"
    );
    // And the no-backup configuration is far worse than either.
    let none = simulate_recovery(&RecoveryConfig::figure11(BackupChoice::None));
    assert!(none.overall_p95() > m3.overall_p95());
}

/// Table 2: our predictor's over-estimation rate is at or below the CDF
/// baseline's at (almost) every (market, bid) pair.
#[test]
fn temporal_predictor_dominates_cdf_on_overestimation() {
    let traces = paper_traces(60);
    let ours = TemporalPredictor::paper_default();
    let cdf = CdfPredictor::paper_default();
    let mut wins = 0;
    let mut comparisons = 0;
    for trace in &traces {
        for mult in [0.5, 1.0, 2.0, 5.0] {
            let bid = Bid::times_od(mult, trace.od_price);
            let a = assess_hourly(&ours as &dyn SpotPredictor, trace, bid, 7 * DAY);
            let b = assess_hourly(&cdf as &dyn SpotPredictor, trace, bid, 7 * DAY);
            if let (Some(a), Some(b)) = (a, b) {
                comparisons += 1;
                if a.over_estimation_rate <= b.over_estimation_rate + 0.02 {
                    wins += 1;
                }
                assert!(
                    a.over_estimation_rate < 0.25,
                    "ours f = {}",
                    a.over_estimation_rate
                );
            }
        }
    }
    assert!(comparisons >= 8, "too few scoreable pairs: {comparisons}");
    assert!(
        wins as f64 >= 0.9 * comparisons as f64,
        "ours wins only {wins}/{comparisons}"
    );
}

/// ODPeak (static peak provisioning) is the costliest sane baseline.
#[test]
fn od_peak_is_the_most_expensive() {
    let peak = quick_sim(Approach::OdPeak, 0.99);
    for a in [Approach::OdOnly, Approach::PropNoBackup, Approach::Prop] {
        let r = quick_sim(a, 0.99);
        assert!(
            peak.total_cost() >= r.total_cost(),
            "{a} cost {} vs peak {}",
            r.total_cost(),
            peak.total_cost()
        );
    }
}
