//! Equivalence regression: the unified `ControlLoop`/`Substrate` drivers
//! must reproduce the pre-refactor hand-rolled loops' results exactly.
//!
//! The golden values below were captured from the original
//! `core::simulation::simulate` / `core::prototype::run_prototype`
//! implementations (each carrying its own `for hour in`/`for minute in`
//! driver) immediately before the control-plane refactor, at two fixed
//! seeds/configurations per driver. A drift beyond 1e-9 relative means the
//! refactor changed behaviour, not just structure.
//!
//! Literals are kept exactly as captured (`{:.17e}`, full f64 round-trip
//! precision), even where fewer digits would denote the same value.
#![allow(clippy::excessive_precision)]

use spotcache::cloud::tracegen::paper_traces;
use spotcache::core::controller::ControllerConfig;
use spotcache::core::prototype::{run_prototype, PrototypeConfig};
use spotcache::core::simulation::{simulate, SimConfig};
use spotcache::core::Approach;

fn assert_close(got: f64, want: f64, what: &str) {
    let tol = 1e-9 * want.abs().max(1.0);
    assert!(
        (got - want).abs() <= tol,
        "{what}: got {got:.17e}, want {want:.17e}"
    );
}

/// Online approach (`Prop`), all paper markets, 14 days, default seed.
#[test]
fn hourly_sim_reproduces_pre_refactor_prop_run() {
    let mut cfg = SimConfig::paper_default(Approach::Prop, 320_000.0, 60.0, 1.2);
    cfg.days = 14;
    let r = simulate(&cfg, &paper_traces(14)).unwrap();
    assert_close(r.total_cost(), 1.495_916_000_000_000_28e2, "total cost");
    assert_close(r.violated_day_frac(), 0.0, "violated day fraction");
    assert_eq!(r.revocations, 0);
}

/// CDF baseline, heavier workload, 21 days, seed 0xBEEF. This run suffers
/// hundreds of revocations, so it exercises the revocation event path and
/// the violation accounting end to end — including the qualitative
/// expectation that the naive CDF bidder violates a large share of days.
#[test]
fn hourly_sim_reproduces_pre_refactor_cdf_run() {
    let mut cfg = SimConfig::paper_default(Approach::OdSpotCdf, 500_000.0, 100.0, 2.0);
    cfg.days = 21;
    cfg.seed = 0xBEEF;
    let r = simulate(&cfg, &paper_traces(21)).unwrap();
    assert_close(r.total_cost(), 3.970_953_833_333_325_06e2, "total cost");
    assert_close(
        r.violated_day_frac(),
        4.285_714_285_714_285_48e-1,
        "violated day fraction",
    );
    assert_eq!(r.revocations, 315);
}

/// Figure 9 setup: `Prop_NoBackup` on m4.XL-c day 51.
#[test]
fn prototype_reproduces_pre_refactor_fig9_run() {
    let market = paper_traces(90)
        .into_iter()
        .find(|t| t.market.short_label() == "m4.XL-c")
        .unwrap();
    let cfg = PrototypeConfig {
        controller: ControllerConfig::paper_default(Approach::PropNoBackup),
        start_day: 51,
        peak_rate: 320_000.0,
        max_wss_gb: 60.0,
        theta: 2.0,
        seed: 0xF19,
    };
    let r = run_prototype(&cfg, &market).unwrap();
    assert_eq!(r.revocations, 1);
    assert_eq!(r.latency.count(), 1_727_975);
    assert_close(r.latency.mean(), 5.190_127_820_741_940_92e2, "mean latency");
    assert_close(
        r.latency.quantile(0.95),
        9.295_665_071_788_849_90e2,
        "p95 latency",
    );
}

/// CDF baseline on m4.L-d day 45, seed 5.
#[test]
fn prototype_reproduces_pre_refactor_cdf_run() {
    let market = paper_traces(60).remove(1);
    let cfg = PrototypeConfig {
        controller: ControllerConfig::paper_default(Approach::OdSpotCdf),
        start_day: 45,
        peak_rate: 160_000.0,
        max_wss_gb: 30.0,
        theta: 1.2,
        seed: 5,
    };
    let r = run_prototype(&cfg, &market).unwrap();
    assert_eq!(r.revocations, 1);
    assert_eq!(r.latency.count(), 1_727_940);
    assert_close(r.latency.mean(), 5.107_324_785_641_857_83e2, "mean latency");
    assert_close(
        r.latency.quantile(0.95),
        9.295_665_071_788_849_90e2,
        "p95 latency",
    );
}
