//! Replicated-balancer consistency: multiple load-balancer replicas fed
//! through the epoch ledger (paper footnote 5) must converge to identical
//! routing, and stale replicas must never route to nodes the newest plan
//! dropped once they catch up.

use spotcache::router::balancer::{LoadBalancer, NodeWeights};
use spotcache::router::epoch::WeightLedger;
use spotcache::router::prefix::Pool;

fn weights_a() -> Vec<NodeWeights> {
    vec![
        NodeWeights {
            node: 1,
            hot: 0.5,
            cold: 0.2,
            is_spot: false,
        },
        NodeWeights {
            node: 2,
            hot: 0.5,
            cold: 0.8,
            is_spot: true,
        },
    ]
}

fn weights_b() -> Vec<NodeWeights> {
    vec![
        NodeWeights {
            node: 1,
            hot: 0.3,
            cold: 0.3,
            is_spot: false,
        },
        NodeWeights {
            node: 3,
            hot: 0.7,
            cold: 0.7,
            is_spot: true,
        },
    ]
}

#[test]
fn replicas_converge_to_identical_routing() {
    let ledger = WeightLedger::new();
    let mut sub1 = ledger.subscribe();
    let mut sub2 = ledger.subscribe();
    let mut lb1 = LoadBalancer::new();
    let mut lb2 = LoadBalancer::new();

    ledger.publish(weights_a(), vec![100]);
    // Replica 1 applies immediately; replica 2 lags through another epoch.
    let e = sub1.poll().unwrap();
    lb1.set_weights(&e.weights);
    lb1.set_backups(&e.backups);

    ledger.publish(weights_b(), vec![100, 101]);
    let e1 = sub1.poll().unwrap();
    lb1.set_weights(&e1.weights);
    lb1.set_backups(&e1.backups);
    let e2 = sub2.poll().unwrap();
    assert_eq!(e1.epoch, e2.epoch, "laggard jumps to the newest epoch");
    lb2.set_weights(&e2.weights);
    lb2.set_backups(&e2.backups);

    // Identical epochs → identical routing decisions for every key.
    for i in 0..20_000u64 {
        let k = i.to_be_bytes();
        for pool in [Pool::Hot, Pool::Cold] {
            assert_eq!(lb1.route_read(pool, &k), lb2.route_read(pool, &k));
            assert_eq!(lb1.route_write(pool, &k), lb2.route_write(pool, &k));
        }
    }

    // Node 2 was dropped by epoch 2: nobody routes to it.
    for i in 0..20_000u64 {
        let k = i.to_be_bytes();
        for pool in [Pool::Hot, Pool::Cold] {
            use spotcache::router::balancer::Route;
            if let Route::Node(n) = lb1.route_read(pool, &k) {
                assert_ne!(n, 2, "dropped node must not serve");
            }
        }
    }
}

#[test]
fn concurrent_controller_and_replicas() {
    use std::sync::Arc;

    let ledger = WeightLedger::new();
    let publisher = {
        let ledger = Arc::clone(&ledger);
        std::thread::spawn(move || {
            for i in 0..500u64 {
                let w = if i % 2 == 0 { weights_a() } else { weights_b() };
                ledger.publish(w, vec![100]);
            }
        })
    };
    let replicas: Vec<_> = (0..3)
        .map(|_| {
            let mut sub = ledger.subscribe();
            std::thread::spawn(move || {
                let mut lb = LoadBalancer::new();
                let mut applied = 0u32;
                for _ in 0..20_000 {
                    if let Some(e) = sub.poll() {
                        lb.set_weights(&e.weights);
                        lb.set_backups(&e.backups);
                        applied += 1;
                        // The balancer is always in a coherent state: any
                        // routed node is one of this epoch's nodes.
                        use spotcache::router::balancer::Route;
                        let nodes: Vec<u64> = e.weights.iter().map(|w| w.node).collect();
                        for i in 0..50u64 {
                            if let Route::Node(n) = lb.route_read(Pool::Cold, &i.to_be_bytes()) {
                                assert!(nodes.contains(&n));
                            }
                        }
                    }
                }
                applied
            })
        })
        .collect();
    publisher.join().unwrap();
    for r in replicas {
        assert!(r.join().unwrap() > 0);
    }
    assert_eq!(ledger.latest_epoch(), 500);
}
