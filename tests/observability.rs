//! Observability must be a pure observer: attaching an [`Obs`] bundle to a
//! run cannot change its results, and two identical instrumented runs must
//! produce byte-identical snapshots (all journal timestamps come from
//! logical clocks, never the wall clock).
#![allow(clippy::excessive_precision)]

use std::sync::Arc;

use spotcache::cloud::tracegen::paper_traces;
use spotcache::core::simulation::{simulate_observed, SimConfig};
use spotcache::core::Approach;
use spotcache::obs::export::validate_json;
use spotcache::obs::Obs;
use spotcache::sim::recovery::{simulate_recovery_observed, BackupChoice, RecoveryConfig};

fn assert_close(got: f64, want: f64, what: &str) {
    let tol = 1e-9 * want.abs().max(1.0);
    assert!(
        (got - want).abs() <= tol,
        "{what}: got {got:.17e}, want {want:.17e}"
    );
}

fn observed_golden_run(obs: Option<Arc<Obs>>) -> spotcache::core::simulation::SimResult {
    let mut cfg = SimConfig::paper_default(Approach::OdSpotCdf, 500_000.0, 100.0, 2.0);
    cfg.days = 21;
    cfg.seed = 0xBEEF;
    simulate_observed(&cfg, &paper_traces(21), obs).unwrap()
}

/// Instrumentation must not perturb the golden-equivalence results: the
/// observed run reproduces the same captured values as the bare run in
/// `equivalence_golden.rs`, to full f64 precision.
#[test]
fn observed_sim_matches_golden_values() {
    let obs = Arc::new(Obs::new());
    let r = observed_golden_run(Some(Arc::clone(&obs)));
    assert_close(r.total_cost(), 3.970_953_833_333_325_06e2, "total cost");
    assert_close(
        r.violated_day_frac(),
        4.285_714_285_714_285_48e-1,
        "violated day fraction",
    );
    assert_eq!(r.revocations, 315);
    // And the run actually left a trail.
    assert_eq!(obs.counter("sim_revocations_total").get(), 315);
    assert!(obs.journal().len() > 0);
}

/// Two identical instrumented runs export byte-identical Prometheus text
/// and JSON snapshots: every timestamp is logical, the registry iterates in
/// name order, and the journal is strictly append-ordered.
#[test]
fn observed_snapshots_are_deterministic() {
    let snap = |_: usize| {
        let obs = Arc::new(Obs::new());
        let sim = observed_golden_run(Some(Arc::clone(&obs)));
        assert_eq!(sim.revocations, 315);
        let rcfg = RecoveryConfig::figure11(BackupChoice::None);
        simulate_recovery_observed(&rcfg, Some(&obs));
        (obs.prometheus_text(), obs.json_snapshot())
    };
    let (prom_a, json_a) = snap(0);
    let (prom_b, json_b) = snap(1);
    assert_eq!(prom_a, prom_b, "Prometheus text diverged between runs");
    assert_eq!(json_a, json_b, "JSON snapshot diverged between runs");
    validate_json(&json_a).expect("snapshot is well-formed JSON");
}

/// The snapshot of an observed sim + recovery covers every layer's series.
#[test]
fn snapshot_covers_all_instrumented_layers() {
    let obs = Arc::new(Obs::new());
    observed_golden_run(Some(Arc::clone(&obs)));
    let rcfg = RecoveryConfig::figure11(BackupChoice::Instance(
        spotcache::cloud::catalog::find_type("t2.medium").unwrap(),
    ));
    simulate_recovery_observed(&rcfg, Some(&obs));
    let prom = obs.prometheus_text();
    for series in [
        "control_replans_total",
        "control_plan_cost_dollars",
        "control_zeta",
        "control_bids_total",
        "control_revocations_total",
        "sim_slot_cost_dollars",
        "sim_revocations_total",
        "recovery_warmed_mass",
        "recovery_pump_items_per_s",
        "bucket_backup_cpu_level",
        "bucket_backup_net_level",
    ] {
        assert!(prom.contains(series), "missing series {series}\n{prom}");
    }
    let json = obs.json_snapshot();
    validate_json(&json).expect("well-formed JSON");
    for kind in ["bid_placed", "revocation", "backup_warmup_progress"] {
        assert!(json.contains(kind), "missing journal event kind {kind}");
    }
}
