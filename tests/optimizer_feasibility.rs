//! Property-based integration tests: the controller must produce feasible
//! plans (or clean errors) across randomized workloads, and those plans
//! must respect the formulation's invariants.

use proptest::prelude::*;

use spotcache::cloud::tracegen::paper_traces;
use spotcache::cloud::{SpotTrace, DAY};
use spotcache::core::controller::{ControllerConfig, GlobalController};
use spotcache::core::Approach;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any sane workload yields a feasible plan whose masses, RAM and
    /// throughput constraints all check out, for every approach.
    #[test]
    fn plans_are_always_feasible(
        rate in 1_000.0f64..1_500_000.0,
        wss in 1.0f64..500.0,
        theta in 0.5f64..2.5,
        day in 8u64..28,
        approach_idx in 0usize..6,
    ) {
        let theta = if (theta - 1.0).abs() < 0.02 { 0.97 } else { theta };
        let traces = paper_traces(30);
        let refs: Vec<&SpotTrace> = traces.iter().collect();
        let approach = Approach::ALL[approach_idx];
        let mut c = GlobalController::new(ControllerConfig::paper_default(approach));
        let plan = c.plan(&refs, day * DAY, theta, rate, wss).expect("feasible");
        plan.alloc.assert_feasible(&plan.forecast, 0.0);
        // Sep never puts hot on spot.
        if approach == Approach::OdSpotSep {
            prop_assert!(plan.alloc.hot_on_spot() < 1e-9);
        }
        // Approaches without spot never allocate spot instances.
        if !approach.uses_spot() {
            prop_assert_eq!(plan.alloc.spot_instances(), 0);
        }
        // Backup present exactly when the approach has one and hot data
        // sits on spot.
        if approach.has_backup() && plan.alloc.hot_on_spot() * wss > 0.01 {
            prop_assert!(plan.backup.count > 0);
            let cap = plan.backup.count as f64 * plan.backup.itype.ram_gb * 0.85;
            prop_assert!(cap >= plan.alloc.hot_on_spot() * wss - 1e-9);
        }
    }

    /// Replanning after observing the plan's own counts is stable: the
    /// deallocation damping must not oscillate allocations wildly between
    /// consecutive identical slots.
    #[test]
    fn consecutive_plans_are_stable(
        rate in 10_000.0f64..800_000.0,
        wss in 5.0f64..200.0,
    ) {
        let traces = paper_traces(30);
        let refs: Vec<&SpotTrace> = traces.iter().collect();
        let mut c = GlobalController::new(ControllerConfig::paper_default(Approach::PropNoBackup));
        let p1 = c.plan(&refs, 10 * DAY, 1.2, rate, wss).expect("plan 1");
        let p2 = c.plan(&refs, 10 * DAY + 3_600, 1.2, rate, wss).expect("plan 2");
        let n1 = p1.alloc.total_instances() as i64;
        let n2 = p2.alloc.total_instances() as i64;
        prop_assert!((n1 - n2).abs() <= 1 + n1 / 5, "unstable: {n1} -> {n2}");
    }
}

/// The same seed must reproduce the same plan bit for bit (the whole
/// reproduction pipeline depends on determinism).
#[test]
fn planning_is_deterministic() {
    let traces = paper_traces(30);
    let refs: Vec<&SpotTrace> = traces.iter().collect();
    let plan = |_: u32| {
        let mut c = GlobalController::new(ControllerConfig::paper_default(Approach::Prop));
        let p = c.plan(&refs, 12 * DAY, 2.0, 320_000.0, 60.0).unwrap();
        p.alloc
            .entries
            .iter()
            .map(|e| (e.offer.label.clone(), e.count, e.hot_frac, e.cold_frac))
            .collect::<Vec<_>>()
    };
    assert_eq!(plan(0), plan(1));
}
