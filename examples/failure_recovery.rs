//! Failure recovery with a burstable passive backup.
//!
//! Simulates the revocation of a spot node holding 3 GB of hot content and
//! compares recovery with a t2.medium burstable backup (banked tokens,
//! hottest-first copy) against no backup at all — printing the latency
//! timeline and the token-bucket state that makes the burstable work.
//!
//! Run with: `cargo run --release --example failure_recovery`

use spotcache::cloud::burstable::BurstableState;
use spotcache::cloud::catalog::find_type;
use spotcache::sim::{simulate_recovery, BackupChoice, RecoveryConfig};

fn main() {
    let t2 = find_type("t2.medium").expect("catalog");

    // Show why the burstable can do this: its banked tokens.
    let state = BurstableState::for_type(&t2).unwrap();
    println!("t2.medium at rest:");
    println!(
        "  CPU credits: {:.0} (can burst {:.0} vCPUs for {:.0} s)",
        state.cpu.credits(),
        t2.burst.unwrap().peak_vcpus,
        state.cpu.endurance(t2.burst.unwrap().peak_vcpus)
    );
    println!(
        "  network bucket: {:.0} Mbit (can burst {:.0} Mbps for {:.0} s)\n",
        state.net.bucket().level,
        t2.burst.unwrap().peak_net_mbps,
        state.net.endurance(t2.burst.unwrap().peak_net_mbps)
    );

    for (name, backup) in [
        ("t2.medium passive backup", BackupChoice::Instance(t2)),
        ("no backup (Prop_NoBackup)", BackupChoice::None),
    ] {
        let cfg = RecoveryConfig::figure11(backup);
        let tl = simulate_recovery(&cfg);
        println!("== {name}");
        println!("   healthy average latency: {:.0} us", tl.healthy_avg_us);
        println!(
            "   {:>6} {:>10} {:>10} {:>8}",
            "t (s)", "avg (us)", "p95 (us)", "warm"
        );
        for &t in &[0usize, 30, 60, 120, 180, 300, 600] {
            let p = tl.points[t];
            println!(
                "   {:>6} {:>10.0} {:>10.0} {:>7.0}%",
                p.t,
                p.avg_us,
                p.p95_us,
                100.0 * p.warmed_mass / (cfg.hot_mass_lost + cfg.cold_mass_lost)
            );
        }
        match tl.recovered_at {
            Some(r) => println!("   recovered (within 1.05x of healthy) at t = {r} s"),
            None => println!("   NOT recovered within the {} s horizon", cfg.horizon_secs),
        }
        println!();
    }
    println!("the backup pumps the hot set hottest-first at its burst capacity, so the");
    println!("latency settles in minutes; without it, every key waits to be re-requested.");
}
