//! The whole system, live and in-process: controller, provider, router,
//! partitioner, and real cache nodes in a closed loop.
//!
//! Runs 24 hours of a scaled workload against synthetic spot markets. Every
//! hour the global controller re-plans; real stores fill from the request
//! stream; spot revocations wipe real memory and the failover/redirect
//! machinery keeps serving.
//!
//! Run with: `cargo run --release --example live_cluster`

use rand::rngs::StdRng;
use rand::SeedableRng;

use spotcache::cloud::tracegen::paper_traces;
use spotcache::cloud::{DAY, HOUR};
use spotcache::core::cluster::{LiveCluster, LiveClusterConfig};
use spotcache::core::Approach;
use spotcache::workload::{RequestGenerator, WikipediaTrace};

fn main() {
    let mut cluster = LiveCluster::new(
        LiveClusterConfig::scaled_default(Approach::Prop),
        paper_traces(40),
    );
    // RAM is scaled 1/1024 in-process, so "15 GB" working sets fit in MBs.
    let workload = WikipediaTrace::generate(40, 100_000.0, 15.0, 7);
    let requests = RequestGenerator::read_only(50_000, 1.2).with_value_size(256);
    let mut rng = StdRng::seed_from_u64(1);

    let start = 10 * DAY;
    cluster.advance_to(start);
    println!("hour  nodes  hit-rate  revocations  cumulative-$");
    for hour in 0..24u64 {
        let t = start + hour * HOUR;
        let rate = workload.rate_at(t);
        let wss = workload.wss_at(t);
        cluster.replan(1.2, rate, wss).expect("plan");
        for _ in 0..4_000 {
            cluster.read(&requests.next_request(&mut rng).key_bytes());
        }
        cluster.advance_to(t + HOUR);
        let s = cluster.stats();
        println!(
            "{hour:>4}  {:>5}  {:>7.1}%  {:>11}  {:>12.4}",
            cluster.node_count(),
            100.0 * s.hit_rate(),
            s.revocations,
            cluster.ledger().grand_total(),
        );
    }
    let s = *cluster.stats();
    println!(
        "\ntotals: {} requests, {:.1}% hit rate, {} revocations survived",
        s.requests(),
        100.0 * s.hit_rate(),
        s.revocations
    );
    println!(
        "cost: ${:.4} ({} categories: {:?})",
        cluster.ledger().grand_total(),
        cluster.ledger().breakdown().len(),
        cluster
            .ledger()
            .breakdown()
            .iter()
            .map(|(c, v)| format!("{}=${v:.3}", c.label()))
            .collect::<Vec<_>>()
    );
}
