//! The whole system, live and in-process: controller, provider, router,
//! partitioner, and real cache nodes in a closed loop.
//!
//! Runs 24 hours of a scaled workload against synthetic spot markets,
//! driven by the same [`ControlLoop`] that powers the simulators: every
//! hour the loop re-plans, the [`LiveSubstrate`] applies the plan to real
//! stores filling from the request stream, and spot revocations wipe real
//! memory while the failover/redirect machinery keeps serving.
//!
//! Run with: `cargo run --release --example live_cluster`

use rand::rngs::StdRng;
use rand::SeedableRng;

use spotcache::cloud::tracegen::paper_traces;
use spotcache::cloud::{DAY, HOUR};
use spotcache::core::cluster::{LiveCluster, LiveClusterConfig, LiveSubstrate};
use spotcache::core::{
    Approach, ControlLoop, ControllerConfig, Demand, GlobalController, Schedule,
};
use spotcache::workload::{RequestGenerator, WikipediaTrace};

fn main() {
    let mut cluster = LiveCluster::new(
        LiveClusterConfig::scaled_default(Approach::Prop),
        paper_traces(40),
    );
    // RAM is scaled 1/1024 in-process, so "15 GB" working sets fit in MBs.
    let workload = WikipediaTrace::generate(40, 100_000.0, 15.0, 7);
    let requests = RequestGenerator::read_only(50_000, 1.2).with_value_size(256);
    let mut rng = StdRng::seed_from_u64(1);

    let start = 10 * DAY;
    cluster.advance_to(start);
    println!("hour  nodes  hit-rate  revocations  cumulative-$");
    let substrate = LiveSubstrate::new(
        &mut cluster,
        Schedule::slotted(start, 24, HOUR),
        Box::new(|t| Demand {
            rate: workload.rate_at(t),
            wss_gb: workload.wss_at(t),
        }),
        Box::new(move |cluster, hour| {
            for _ in 0..4_000 {
                cluster.read(&requests.next_request(&mut rng).key_bytes());
            }
            let s = cluster.stats();
            println!(
                "{hour:>4}  {:>5}  {:>7.1}%  {:>11}  {:>12.4}",
                cluster.node_count(),
                100.0 * s.hit_rate(),
                s.revocations,
                cluster.ledger().grand_total(),
            );
        }),
    );
    let controller = GlobalController::new(ControllerConfig::paper_default(Approach::Prop));
    let metrics = ControlLoop::new(controller, 1.2)
        .run(substrate)
        .expect("plan");

    let s = metrics.serve;
    println!(
        "\ntotals: {} requests, {:.1}% hit rate, {} revocations survived",
        s.requests(),
        100.0 * s.hit_rate(),
        s.revocations
    );
    println!(
        "cost: ${:.4} ({} categories: {:?})",
        metrics.total_cost(),
        metrics.ledger.breakdown().len(),
        metrics
            .ledger
            .breakdown()
            .iter()
            .map(|(c, v)| format!("{}=${v:.3}", c.label()))
            .collect::<Vec<_>>()
    );
}
