//! Quickstart: assemble a small spot/on-demand cache cluster by hand.
//!
//! Builds two cache nodes (one "on-demand", one "spot"), a hot-key
//! partitioner, and a load balancer with hot-cold mixing weights; drives a
//! Zipfian read-mostly workload through the stack; then revokes the spot
//! node and shows reads failing over.
//!
//! Run with: `cargo run --release --example quickstart`

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use spotcache::cache::CacheNode;
use spotcache::router::balancer::{LoadBalancer, NodeWeights, Route};
use spotcache::router::partitioner::KeyPartitioner;
use spotcache::workload::RequestGenerator;

fn main() {
    // Two cache nodes: node 1 plays an on-demand m3.medium, node 2 a spot
    // m4.large; node 100 is a small burstable backup.
    let mut nodes: HashMap<u64, CacheNode> = HashMap::new();
    nodes.insert(1, CacheNode::new(1, 1.0, 1.0));
    nodes.insert(2, CacheNode::new(2, 2.0, 2.0));
    nodes.insert(100, CacheNode::new(100, 2.0, 1.0));

    // Hot-cold mixing weights: the hot pool is split between both nodes,
    // the cold pool lives mostly on the cheap spot node.
    let mut lb = LoadBalancer::new();
    lb.set_weights(&[
        NodeWeights {
            node: 1,
            hot: 0.5,
            cold: 0.1,
            is_spot: false,
        },
        NodeWeights {
            node: 2,
            hot: 0.5,
            cold: 0.9,
            is_spot: true,
        },
    ]);
    lb.set_backups(&[100]);

    // The partitioner learns which keys are hot from the access stream.
    let mut partitioner = KeyPartitioner::new(100_000, 16);

    let workload = RequestGenerator::new(50_000, 0.99, 0.95).with_value_size(256);
    let mut rng = StdRng::seed_from_u64(42);

    let mut backend_reads = 0u64;
    let mut backup_writes = 0u64;
    const REQUESTS: usize = 200_000;

    for _ in 0..REQUESTS {
        let req = workload.next_request(&mut rng);
        let key = req.key_bytes();
        partitioner.observe(&key);
        let pool = partitioner.pool(&key);

        if req.is_read {
            match lb.route_read(pool, &key) {
                Route::Node(n) | Route::Backup(n) => {
                    if nodes[&n].store.get(&key).is_none() {
                        // Miss: fetch from the backend and install.
                        backend_reads += 1;
                        nodes[&n].store.set(key.to_vec(), vec![0u8; req.value_size]);
                    }
                }
                Route::Backend => backend_reads += 1,
            }
        } else {
            for target in lb.route_write(pool, &key) {
                let n = match target {
                    Route::Node(n) | Route::Backup(n) => n,
                    Route::Backend => continue,
                };
                if matches!(target, Route::Backup(_)) {
                    backup_writes += 1;
                }
                nodes[&n].store.set(key.to_vec(), vec![0u8; req.value_size]);
            }
        }
    }

    println!("after {REQUESTS} requests:");
    for id in [1u64, 2, 100] {
        let stats = nodes[&id].store.stats();
        println!(
            "  node {id:>3}: {:>6} items, {:>9} bytes, hit rate {:.1}%",
            nodes[&id].store.len(),
            nodes[&id].store.used_bytes(),
            100.0 * stats.hit_rate(),
        );
    }
    println!(
        "  backend reads: {backend_reads} ({:.1}%)",
        100.0 * backend_reads as f64 / REQUESTS as f64
    );
    println!("  write fan-outs to backup: {backup_writes}");

    // Revoke the spot node: its RAM vanishes; hot keys fail over to the
    // backup, cold keys go to the backend.
    println!("\nrevoking spot node 2 ...");
    nodes.get_mut(&2).unwrap().wipe();
    lb.mark_failed(2);

    let (mut to_backup, mut to_backend, mut served) = (0u64, 0u64, 0u64);
    for _ in 0..20_000 {
        let req = workload.next_request(&mut rng);
        let key = req.key_bytes();
        match lb.route_read(partitioner.pool(&key), &key) {
            Route::Backup(_) => to_backup += 1,
            Route::Backend => to_backend += 1,
            Route::Node(_) => served += 1,
        }
    }
    println!("  reads after revocation: {served} from surviving node, {to_backup} from backup, {to_backend} from backend");
    println!("\n(the full system automates all of this — see the other examples)");
}
