//! Drive a cache node with real memcached wire traffic.
//!
//! The cache substrate speaks the memcached text protocol, so a node can
//! be exercised exactly the way mcrouter or a memcache client library
//! would — including pipelining, TTLs, counters, and slab-aware capacity
//! effects.
//!
//! Run with: `cargo run --release --example memcached_protocol`

use spotcache::cache::slab::{slab_efficiency, SlabAllocator, PAGE_SIZE};
use spotcache::cache::{serve, Store, StoreConfig};

fn main() {
    let store = Store::new(StoreConfig {
        capacity_bytes: 8 << 20,
        shards: 4,
    });

    // A pipelined batch, exactly as a client would send it.
    let batch = b"set user:1001 0 0 27\r\n{\"name\":\"ada\",\"plan\":\"pro\"}\r\n\
set counter 0 0 1\r\n0\r\n\
incr counter 41\r\n\
incr counter 1\r\n\
get user:1001 counter\r\n\
stats\r\n";
    let (response, consumed) = serve(&store, batch, 0);
    println!("client sent {consumed} bytes, server replied:");
    println!("{}", String::from_utf8_lossy(&response));

    // TTL semantics against the logical clock.
    let (r, _) = serve(&store, b"set session 0 300 5\r\nxoxox\r\n", 1_000);
    assert_eq!(r, b"STORED\r\n");
    let (alive, _) = serve(&store, b"get session\r\n", 1_200);
    let (dead, _) = serve(&store, b"get session\r\n", 1_301);
    println!(
        "session at t+200s: {}; at t+301s: {}",
        if alive.starts_with(b"VALUE") {
            "alive"
        } else {
            "gone"
        },
        if dead == b"END\r\n" {
            "expired"
        } else {
            "alive"
        },
    );

    // Slab-class arithmetic: why a node's usable RAM is less than its RAM.
    println!("\nslab-class capacity math (memcached memory layout):");
    for &size in &[100usize, 500, 1_000, 4_152, 10_000, 100_000] {
        println!(
            "  {size:>7} B items: {:>5.1}% of each page is usable",
            100.0 * slab_efficiency(size)
        );
    }
    let mut slab = SlabAllocator::new(64 * PAGE_SIZE);
    let mut stored = 0u64;
    while slab.allocate(4_152).is_ok() {
        stored += 1;
    }
    println!(
        "  a 64 MiB node stores {stored} x 4 KiB items ({:.1} MiB of payload)",
        stored as f64 * 4_152.0 / (1 << 20) as f64
    );
}
