//! Hot-cold mixing: the procurement optimizer end to end.
//!
//! Builds the paper's online optimization problem for a skewed workload
//! over real (synthetic) spot markets and contrasts three policies:
//! on-demand only, strict hot-cold *separation*, and the paper's hot-cold
//! *mixing* — showing the allocation, the modeled cost, and the resource
//! wastage separation causes (paper Figure 3 / Section 5.5).
//!
//! Run with: `cargo run --release --example hotcold_mixing`

use spotcache::cloud::tracegen::paper_traces;
use spotcache::cloud::DAY;
use spotcache::core::controller::{ControllerConfig, GlobalController};
use spotcache::core::Approach;

fn main() {
    let traces = paper_traces(30);
    let refs: Vec<&spotcache::cloud::SpotTrace> = traces.iter().collect();
    let now = 10 * DAY;

    // 320 kops against a 60 GB working set, Zipf 1.0 (moderate skew).
    let (rate, wss, theta) = (320_000.0, 60.0, 0.99);

    for approach in [
        Approach::OdOnly,
        Approach::OdSpotSep,
        Approach::PropNoBackup,
    ] {
        let mut controller = GlobalController::new(ControllerConfig::paper_default(approach));
        let plan = controller
            .plan(&refs, now, theta, rate, wss)
            .expect("feasible plan");
        println!("== {approach}");
        println!("   hot set H = {:.3} of the working set", plan.hot_frac);
        let f = plan.forecast;
        let r_h = f.rate * f.f_hot / f.hot_frac;
        let r_c = f.rate * (f.f_alpha - f.f_hot) / (f.alpha - f.hot_frac).max(1e-12);
        for e in &plan.alloc.entries {
            if e.count == 0 {
                continue;
            }
            let cpu_util =
                (e.hot_frac * r_h + e.cold_frac * r_c) / (e.count as f64 * e.offer.max_rate);
            let ram_util =
                (e.hot_frac + e.cold_frac) * wss / (e.count as f64 * e.offer.usable_ram_gb);
            println!(
                "   {:>14} x{:<3} hot x = {:.3}  cold y = {:.3}  cpu {:>3.0}%  ram {:>3.0}%  (${:.4}/h each)",
                e.offer.label,
                e.count,
                e.hot_frac,
                e.cold_frac,
                100.0 * cpu_util,
                100.0 * ram_util,
                e.offer.price
            );
        }
        println!("   modeled slot cost: ${:.3}", plan.alloc.cost);
        if plan.backup.count > 0 {
            println!(
                "   backup: {} x {} (${:.3}/h)",
                plan.backup.count, plan.backup.itype.name, plan.backup.hourly_cost
            );
        }
        println!();
    }
    println!("separation pins the hot set (and with it ~90% of the traffic) on expensive");
    println!("on-demand nodes whose RAM sits mostly empty, while its spot nodes serve so");
    println!("few requests their CPU idles -- the paper's resource-wastage observation.");
    println!("Mixing lets every node carry a slice of both pools and cuts the bill.");
}
