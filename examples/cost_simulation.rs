//! Long-horizon cost simulation: what does a month of caching cost?
//!
//! Runs the full control loop (forecast → predict → optimize → bill) for
//! three procurement approaches over the same 30-day synthetic spot
//! markets and diurnal workload, then prints the cost ledger, violations,
//! and spot revocation counts side by side.
//!
//! Run with: `cargo run --release --example cost_simulation`

use spotcache::cloud::billing::CostCategory;
use spotcache::cloud::tracegen::paper_traces;
use spotcache::core::simulation::{simulate, SimConfig};
use spotcache::core::Approach;

fn main() {
    let days = 30;
    let traces = paper_traces(days);
    println!("30-day simulation: 320 kops peak, 60 GB working set, Zipf 1.0");
    println!(
        "markets: {}\n",
        traces
            .iter()
            .map(|t| t.market.short_label())
            .collect::<Vec<_>>()
            .join(", ")
    );

    let mut baseline = None;
    for approach in [Approach::OdOnly, Approach::OdSpotSep, Approach::Prop] {
        let mut cfg = SimConfig::paper_default(approach, 320_000.0, 60.0, 0.99);
        cfg.days = days;
        let r = simulate(&cfg, &traces).expect("simulation");
        let total = r.total_cost();
        let base = *baseline.get_or_insert(total);
        println!("== {approach}");
        println!(
            "   on-demand: {:>10.2} $",
            r.ledger.total(CostCategory::OnDemand)
        );
        println!(
            "   spot:      {:>10.2} $",
            r.ledger.total(CostCategory::Spot)
        );
        println!(
            "   backup:    {:>10.2} $",
            r.ledger.total(CostCategory::Backup)
        );
        println!(
            "   total:     {:>10.2} $  ({:.0}% of ODOnly)",
            total,
            100.0 * total / base
        );
        println!(
            "   spot revocations: {}, days violating the 1% target: {:.0}%\n",
            r.revocations,
            100.0 * r.violated_day_frac()
        );
    }
    println!("the full evaluation (all tables and figures) lives in the spotcache-bench");
    println!("binaries: table1..table4, fig2..fig13 — see DESIGN.md and EXPERIMENTS.md.");
}
