//! Spot feature prediction: lifetimes and prices from market history.
//!
//! Generates a 90-day synthetic spot market, then walks through it
//! comparing the temporal-locality predictor against the CDF baseline —
//! both the raw predictions and the paper's Table 2 assessment metrics.
//!
//! Run with: `cargo run --release --example spot_prediction`

use spotcache::cloud::spot::Bid;
use spotcache::cloud::tracegen::paper_traces;
use spotcache::cloud::DAY;
use spotcache::spotmodel::assess::assess_hourly;
use spotcache::spotmodel::{CdfPredictor, SpotPredictor, TemporalPredictor};

fn main() {
    let traces = paper_traces(90);
    let trace = traces
        .iter()
        .find(|t| t.market.short_label() == "m4.XL-c")
        .expect("m4.XL-c");

    let ours = TemporalPredictor::paper_default();
    let cdf = CdfPredictor::paper_default();
    let bid1 = Bid(trace.od_price);

    println!(
        "market {} (on-demand {:.4} $/h), bid = 1d",
        trace.market, trace.od_price
    );
    println!("\nday-by-day predictions for the low bid:");
    println!(
        "{:>5} {:>10} {:>14} {:>14} {:>12} {:>12}",
        "day", "price", "ours L (h)", "cdf L (h)", "ours p $/h", "cdf p $/h"
    );
    for day in [10u64, 25, 35, 45, 55, 70, 85] {
        let now = day * DAY;
        let price = trace.price_at(now).unwrap();
        let o = ours.predict(trace, now, bid1);
        let c = cdf.predict(trace, now, bid1);
        println!(
            "{day:>5} {price:>10.4} {:>14} {:>14} {:>12} {:>12}",
            o.map_or("-".into(), |f| format!("{:.1}", f.lifetime / 3600.0)),
            c.map_or("-".into(), |f| format!("{:.1}", f.lifetime / 3600.0)),
            o.map_or("-".into(), |f| format!("{:.4}", f.avg_price)),
            c.map_or("-".into(), |f| format!("{:.4}", f.avg_price)),
        );
    }

    println!("\nwalk-forward assessment over the whole trace (7-day training):");
    for (name, p) in [
        ("temporal (ours)", &ours as &dyn SpotPredictor),
        ("cdf baseline", &cdf),
    ] {
        for mult in [1.0, 5.0] {
            let bid = Bid::times_od(mult, trace.od_price);
            match assess_hourly(p, trace, bid, 7 * DAY) {
                Some(a) => println!(
                    "  {name:>16} @ {mult}d: over-estimation rate {:.2}, price deviation {:.2} ({} predictions)",
                    a.over_estimation_rate, a.price_deviation, a.samples
                ),
                None => println!("  {name:>16} @ {mult}d: nothing scoreable"),
            }
        }
    }
    println!("\nthe temporal predictor's over-estimation rate stays near its configured");
    println!("5% percentile; the CDF baseline over-promises whenever the market flaps.");
}
