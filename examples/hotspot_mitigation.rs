//! Hotspot mitigation at extreme skew: multi-tier classification plus
//! top-K key replication.
//!
//! At Zipf 2.0 a handful of keys carries most of the traffic; consistent
//! hashing would pin each of them to one node and melt it. This example
//! shows the two router extensions working together: the N-tier
//! partitioner (paper footnote 3) grades keys scorching/warm/cold, and the
//! [`HotReplicaSet`] replicates the scorching few on every node,
//! round-robining their reads.
//!
//! Run with: `cargo run --release --example hotspot_mitigation`

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use spotcache::router::hotreplica::HotReplicaSet;
use spotcache::router::levels::{MultiLevelPartitioner, MultiLevelRouter};
use spotcache::workload::zipf::ScrambledZipfian;

fn main() {
    let nodes: Vec<u64> = (1..=8).collect();
    // Three tiers: scorching (>= 5000 accesses/window), warm (>= 100), cold.
    let mut tiers = MultiLevelPartitioner::new(1 << 20, vec![5_000, 100]);
    // Replicate the 8 hottest keys everywhere.
    let mut replicas = HotReplicaSet::new(8, 2_000);
    // Tier 0 is irrelevant for ring routing (those keys are replicated);
    // warm keys spread over all nodes, cold too (different weights).
    let router = MultiLevelRouter::new(&[
        nodes.iter().map(|&n| (n, 1.0)).collect(),
        nodes.iter().map(|&n| (n, 1.0)).collect(),
        nodes.iter().map(|&n| (n, 1.0)).collect(),
    ]);

    let workload = ScrambledZipfian::new(1_000_000, 2.0);
    let mut rng = StdRng::seed_from_u64(42);

    // Observe a window, then refresh the classifiers.
    for _ in 0..300_000 {
        let key = workload.sample(&mut rng).to_be_bytes();
        tiers.observe(&key);
        replicas.observe(&key, tiers.estimate(&key));
    }
    replicas.refresh();

    // Serve a second window and count per-node load, with and without
    // replication of the scorching tier.
    let mut with_repl: HashMap<u64, u64> = HashMap::new();
    let mut without: HashMap<u64, u64> = HashMap::new();
    let (mut replicated_reads, mut ring_reads) = (0u64, 0u64);
    for _ in 0..300_000 {
        let key = workload.sample(&mut rng).to_be_bytes();
        let level = tiers.level(&key);
        let ring_node = router.route(level, &key).unwrap();
        *without.entry(ring_node).or_default() += 1;
        let node = if replicas.is_replicated(&key) {
            replicated_reads += 1;
            replicas.route_read(&nodes).unwrap()
        } else {
            ring_reads += 1;
            ring_node
        };
        *with_repl.entry(node).or_default() += 1;
    }

    let spread = |m: &HashMap<u64, u64>| {
        let max = *m.values().max().unwrap() as f64;
        let avg = m.values().sum::<u64>() as f64 / nodes.len() as f64;
        max / avg
    };
    println!("replicated keys: {}", replicas.replicated_keys().len());
    println!("reads: {replicated_reads} sprayed over all nodes, {ring_reads} via the rings");
    println!();
    println!("per-node load (300k reads over 8 nodes):");
    println!("  node   ring-only   with top-K replication");
    for n in &nodes {
        println!(
            "  {n:>4}  {:>10}  {:>23}",
            without.get(n).copied().unwrap_or(0),
            with_repl.get(n).copied().unwrap_or(0)
        );
    }
    println!();
    println!(
        "peak-to-average load: {:.2}x ring-only -> {:.2}x with replication",
        spread(&without),
        spread(&with_repl)
    );
    println!("(a 1.0x spread is perfect balance; ring-only melts whichever node drew");
    println!("the #1 key, which is the hotspot the paper's even-weight step assumes away)");
}
