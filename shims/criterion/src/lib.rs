//! Offline stand-in for `criterion` (API subset).
//!
//! Provides the same surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `sample_size`, `throughput`,
//! `BenchmarkId`, `black_box` — backed by a simple wall-clock timer: each
//! benchmark is warmed up briefly, then timed over `sample_size` samples
//! and reported as mean ns/iter on stdout. No statistics machinery, no
//! HTML reports; enough to compare hot paths locally without network
//! access to fetch the real crate.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier (defers to `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Conversion into a benchmark identifier (strings or [`BenchmarkId`]).
pub trait IntoBenchId {
    /// The rendered identifier.
    fn into_id(self) -> String;
}
impl IntoBenchId for BenchmarkId {
    fn into_id(self) -> String {
        self.name
    }
}
impl IntoBenchId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}
impl IntoBenchId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Per-iteration timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the configured iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Configures the default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        self.run(&id, &mut f);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_id();
        self.run(&id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Warm-up: find an iteration count that takes ~5ms per sample.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        let samples = self.sample_size.max(1);
        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        for _ in 0..samples {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            total += b.elapsed;
            best = best.min(b.elapsed);
        }
        let mean_ns = total.as_nanos() as f64 / (samples as u64 * iters) as f64;
        let best_ns = best.as_nanos() as f64 / iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:.1} Melem/s", n as f64 * 1e3 / best_ns)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:.1} MiB/s", n as f64 * 1e9 / best_ns / (1 << 20) as f64)
            }
            None => String::new(),
        };
        println!(
            "{}/{id}: mean {mean_ns:.1} ns/iter, best {best_ns:.1} ns/iter ({samples} samples x {iters} iters){rate}",
            self.name
        );
    }

    /// Ends the group (reporting already happened per-benchmark).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_smoke() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2);
        g.throughput(Throughput::Elements(1));
        g.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }
}
