//! Offline stand-in for the `bytes` crate (API subset).
//!
//! [`Bytes`] here is an immutable byte buffer backed by `Arc<[u8]>`:
//! cheap clones, usable as a `HashMap` key, `Deref`s to `[u8]`. The real
//! crate's zero-copy slicing/vtable machinery is not reproduced — no call
//! site in the workspace needs it.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable chunk of bytes.
#[derive(Clone, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self(Arc::from(&[][..]))
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(Arc::from(data))
    }

    /// Wraps a static byte slice (copied here, unlike the real crate —
    /// semantics are identical, only the allocation differs).
    pub fn from_static(data: &'static [u8]) -> Self {
        Self(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must agree with <[u8] as Hash> for Borrow-based HashMap lookups.
        <[u8] as Hash>::hash(&self.0, state)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.0[..] == other.0[..]
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0[..].cmp(&other.0[..])
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.0[..] == *other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.0[..] == **other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.0[..] == other[..]
    }
}
impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.0[..] == *other.as_bytes()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other.0[..]
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Self::copy_from_slice(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Self::from(v.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn hashmap_borrow_lookup() {
        let mut m: HashMap<Bytes, u32> = HashMap::new();
        m.insert(Bytes::from("alpha"), 1);
        assert_eq!(m.get(b"alpha".as_ref()), Some(&1));
        assert_eq!(m.get(b"beta".as_ref()), None);
    }

    #[test]
    fn conversions_and_eq() {
        let b = Bytes::copy_from_slice(b"xyz");
        assert_eq!(b, Bytes::from("xyz"));
        assert_eq!(b.to_vec(), b"xyz".to_vec());
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(format!("{:?}", Bytes::from("a\n")), "b\"a\\n\"");
    }
}
