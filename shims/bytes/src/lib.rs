//! Offline stand-in for the `bytes` crate (API subset).
//!
//! [`Bytes`] here is an immutable byte buffer with a small-buffer
//! optimization: payloads up to [`INLINE_CAP`] bytes live inline in the
//! struct (clone = a 24-byte memcpy, no allocation, no refcount), larger
//! ones are backed by `Arc<[u8]>`. Cheap clones, usable as a `HashMap`
//! key, `Deref`s to `[u8]`. The real crate's zero-copy slicing/vtable
//! machinery is not reproduced — no call site in the workspace needs it.
//!
//! The inline representation is a measured hot-path win, not a
//! micro-nicety: an `Arc` clone/drop pair is two *locked* RMWs on the
//! allocation's refcount word — on x86 each is a full memory barrier, and
//! the word sits on a cold cache line when values are scattered across a
//! big cache. A GET that clones the stored value out of the map paid that
//! serialization on every hit; short keys paid a dependent heap hop on
//! every map-probe equality check. Both vanish for small payloads.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// Largest payload stored inline. Chosen so the enum stays 24 bytes
/// (16-byte `Arc<[u8]>` fat pointer + tag, rounded to alignment): typical
/// cache keys and small values fit, big values keep shared-refcount
/// clones.
pub const INLINE_CAP: usize = 22;

#[derive(Clone)]
enum Repr {
    Inline { len: u8, buf: [u8; INLINE_CAP] },
    Shared(Arc<[u8]>),
}

/// A cheaply clonable, immutable chunk of bytes.
#[derive(Clone)]
pub struct Bytes(Repr);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self(Repr::Inline {
            len: 0,
            buf: [0; INLINE_CAP],
        })
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        if data.len() <= INLINE_CAP {
            let mut buf = [0; INLINE_CAP];
            buf[..data.len()].copy_from_slice(data);
            Self(Repr::Inline {
                len: data.len() as u8,
                buf,
            })
        } else {
            Self(Repr::Shared(Arc::from(data)))
        }
    }

    /// Wraps a static byte slice (copied here, unlike the real crate —
    /// semantics are identical, only the allocation differs).
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Shared(a) => a,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    #[inline]
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must agree with <[u8] as Hash> for Borrow-based HashMap lookups.
        <[u8] as Hash>::hash(self.as_slice(), state)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == &other[..]
    }
}
impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        &self[..] == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        if v.len() <= INLINE_CAP {
            Self::copy_from_slice(&v)
        } else {
            Self(Repr::Shared(Arc::from(v.into_boxed_slice())))
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Self::copy_from_slice(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Self::from(v.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn hashmap_borrow_lookup() {
        let mut m: HashMap<Bytes, u32> = HashMap::new();
        m.insert(Bytes::from("alpha"), 1);
        assert_eq!(m.get(b"alpha".as_ref()), Some(&1));
        assert_eq!(m.get(b"beta".as_ref()), None);
    }

    #[test]
    fn conversions_and_eq() {
        let b = Bytes::copy_from_slice(b"xyz");
        assert_eq!(b, Bytes::from("xyz"));
        assert_eq!(b.to_vec(), b"xyz".to_vec());
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(format!("{:?}", Bytes::from("a\n")), "b\"a\\n\"");
    }
}
