//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of `rand` it actually uses. The implementation is
//! *bit-compatible* with `rand 0.8` + `rand_chacha 0.3` for every code
//! path spotcache exercises:
//!
//! * `StdRng` is ChaCha12 (djb variant: 64-bit block counter in words
//!   12–13, 64-bit stream in words 14–15, both zero by default), with the
//!   block-buffer consumed word-sequentially exactly like
//!   `rand_core::block::BlockRng`;
//! * `SeedableRng::seed_from_u64` uses `rand_core 0.6`'s PCG32 seed
//!   expansion;
//! * `Rng::gen::<f64>()` is the 53-bit multiply construction;
//! * `Rng::gen_range` over integer ranges is the widening-multiply
//!   rejection sampler of `rand 0.8`'s `UniformInt`.
//!
//! Seeded sequences therefore match what the real crate would produce,
//! which keeps every golden value and qualitative shape test in the
//! workspace meaningful.

/// Low-level source of randomness (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A seedable RNG (mirror of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates an RNG from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with PCG32 (identical to
    /// `rand_core 0.6`).
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let x = pcg32(&mut state);
            chunk.copy_from_slice(&x[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable from the uniform "standard" distribution.
pub trait StandardSample: Sized {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8 `Standard` for f64: 53 significant bits, multiply-based.
        let scale = 1.0 / ((1u64 << 53) as f64);
        scale * (rng.next_u64() >> 11) as f64
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let scale = 1.0 / ((1u32 << 24) as f32);
        scale * (rng.next_u32() >> 8) as f32
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8: sign bit of a u32 draw.
        (rng.next_u32() as i32) < 0
    }
}

macro_rules! standard_int_32 {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $t
            }
        }
    )*};
}
macro_rules! standard_int_64 {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int_32!(u8, u16, u32, i8, i16, i32);
standard_int_64!(u64, i64, usize, isize, u128, i128);

/// Types usable with [`Rng::gen_range`].
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from the half-open range `[low, high)`.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform draw from the closed range `[low, high]`.
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

// rand 0.8 UniformInt: Lemire-style widening-multiply rejection, with the
// sampled word width ($u_large) being u32 for sub-32-bit types and u64
// otherwise (usize is 64-bit on every target we support).
macro_rules! uniform_int {
    ($ty:ty, $unsigned:ty, $u_large:ty, $sample_large:ident) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: low >= high");
                let range = high.wrapping_sub(low) as $unsigned as $u_large;
                let zone = if <$unsigned>::MAX <= u16::MAX as $unsigned {
                    let unsigned_max = <$u_large>::MAX;
                    let ints_to_reject = (unsigned_max - range + 1) % range;
                    unsigned_max - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = rng.$sample_large() as $u_large;
                    let (hi, lo) = wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                assert!(low <= high, "gen_range: low > high");
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                // Range of 0 here means the whole domain: sample directly.
                if range == 0 {
                    return StandardSample::standard_sample(rng);
                }
                let zone = if <$unsigned>::MAX <= u16::MAX as $unsigned {
                    let unsigned_max = <$u_large>::MAX;
                    let ints_to_reject = (unsigned_max - range + 1) % range;
                    unsigned_max - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = rng.$sample_large() as $u_large;
                    let (hi, lo) = wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

trait WideningMul: Sized {
    fn widening(self, other: Self) -> (Self, Self);
}
impl WideningMul for u32 {
    fn widening(self, other: Self) -> (Self, Self) {
        let t = self as u64 * other as u64;
        ((t >> 32) as u32, t as u32)
    }
}
impl WideningMul for u64 {
    fn widening(self, other: Self) -> (Self, Self) {
        let t = self as u128 * other as u128;
        ((t >> 64) as u64, t as u64)
    }
}
fn wmul<T: WideningMul>(a: T, b: T) -> (T, T) {
    a.widening(b)
}

uniform_int!(u8, u8, u32, next_u32);
uniform_int!(u16, u16, u32, next_u32);
uniform_int!(u32, u32, u32, next_u32);
uniform_int!(u64, u64, u64, next_u64);
uniform_int!(usize, usize, u64, next_u64);
uniform_int!(i8, u8, u32, next_u32);
uniform_int!(i16, u16, u32, next_u32);
uniform_int!(i32, u32, u32, next_u32);
uniform_int!(i64, u64, u64, next_u64);
uniform_int!(isize, usize, u64, next_u64);

macro_rules! uniform_float {
    ($ty:ty, $uty:ty, $bits_to_discard:expr, $one_bits:expr, $next:ident) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: low >= high");
                // rand 0.8 UniformFloat::sample_single: mantissa bits set
                // the fraction of a float in [1, 2), then scale.
                let scale = high - low;
                let value1_2 = <$ty>::from_bits((rng.$next() >> $bits_to_discard) | $one_bits);
                let value0_1 = value1_2 - 1.0;
                low + scale * value0_1
            }
            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                // Matches rand 0.8, which reuses the half-open sampler for
                // float inclusive ranges (measure-zero difference).
                assert!(low <= high, "gen_range: low > high");
                if low == high {
                    return low;
                }
                Self::sample_single(low, high, rng)
            }
        }
    };
}
// f64: discard 11 bits, bit pattern of 1.0f64 is 0x3FF << 52.
uniform_float!(f64, u64, 11, 0x3FF0_0000_0000_0000u64, next_u64);
// f32: discard 8 bits, bit pattern of 1.0f32 is 0x7F << 23.
uniform_float!(f32, u32, 8, 0x3F80_0000u32, next_u32);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single_inclusive(*self.start(), *self.end(), rng)
    }
}

/// User-facing RNG extension trait (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Draws a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // rand 0.8 Bernoulli: compare against p * 2^64 with the exact
        // carve-out for p == 1.
        if p == 1.0 {
            return true;
        }
        let p_int = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    const CHACHA_ROUNDS: usize = 12;

    #[inline(always)]
    fn quarter_round(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(16);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(12);
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(8);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(7);
    }

    pub(crate) fn chacha_block(input: &[u32; 16], rounds: usize) -> [u32; 16] {
        let mut x = *input;
        for _ in 0..rounds / 2 {
            quarter_round(&mut x, 0, 4, 8, 12);
            quarter_round(&mut x, 1, 5, 9, 13);
            quarter_round(&mut x, 2, 6, 10, 14);
            quarter_round(&mut x, 3, 7, 11, 15);
            quarter_round(&mut x, 0, 5, 10, 15);
            quarter_round(&mut x, 1, 6, 11, 12);
            quarter_round(&mut x, 2, 7, 8, 13);
            quarter_round(&mut x, 3, 4, 9, 14);
        }
        for (xi, ii) in x.iter_mut().zip(input.iter()) {
            *xi = xi.wrapping_add(*ii);
        }
        x
    }

    /// The standard RNG: ChaCha12, bit-compatible with `rand 0.8`'s
    /// `StdRng` (via `rand_chacha 0.3`) for sequential `next_u32` /
    /// `next_u64` / `fill_bytes` use.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        /// ChaCha input block; words 12–13 are the 64-bit block counter of
        /// the *next* block to generate, words 14–15 the stream id.
        state: [u32; 16],
        buf: [u32; 16],
        /// Next unread word in `buf`; 16 means empty.
        index: usize,
    }

    impl StdRng {
        fn refill(&mut self) {
            self.buf = chacha_block(&self.state, CHACHA_ROUNDS);
            // 64-bit counter increment across words 12..13.
            let (lo, carry) = self.state[12].overflowing_add(1);
            self.state[12] = lo;
            if carry {
                self.state[13] = self.state[13].wrapping_add(1);
            }
            self.index = 0;
        }

        #[inline]
        fn next_word(&mut self) -> u32 {
            if self.index >= 16 {
                self.refill();
            }
            let w = self.buf[self.index];
            self.index += 1;
            w
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut state = [0u32; 16];
            state[0] = 0x6170_7865;
            state[1] = 0x3320_646e;
            state[2] = 0x7962_2d32;
            state[3] = 0x6b20_6574;
            for i in 0..8 {
                state[4 + i] = u32::from_le_bytes([
                    seed[4 * i],
                    seed[4 * i + 1],
                    seed[4 * i + 2],
                    seed[4 * i + 3],
                ]);
            }
            Self {
                state,
                buf: [0; 16],
                index: 16,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.next_word()
        }

        fn next_u64(&mut self) -> u64 {
            // BlockRng semantics: words are consumed strictly sequentially,
            // low word first.
            let lo = self.next_word() as u64;
            let hi = self.next_word() as u64;
            (hi << 32) | lo
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(4) {
                let w = self.next_word().to_le_bytes();
                chunk.copy_from_slice(&w[..chunk.len()]);
            }
        }
    }

    /// A small fast RNG. Not bit-compatible with upstream `SmallRng`
    /// (which is platform-dependent anyway); provided for completeness.
    pub type SmallRng = StdRng;
}

/// `rand::prelude` stand-in.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::{chacha_block, StdRng};
    use super::{Rng, RngCore, SeedableRng};

    /// RFC 7539 §2.1.1 quarter-round test vector (round function shared by
    /// every ChaCha variant).
    #[test]
    fn chacha_quarter_round_rfc7539() {
        // Run a single column+diagonal-free QR by building a state where
        // only the tested lanes matter is awkward; instead check the full
        // block function against the RFC 7539 §2.3.2 ChaCha20 vector below,
        // which exercises every quarter round.
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] =
                u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        // IETF layout for the RFC vector: 32-bit counter = 1, then the
        // 96-bit nonce 000000 09000000 4a000000 00000000.
        state[12] = 1;
        state[13] = 0x0900_0000;
        state[14] = 0x4a00_0000;
        state[15] = 0x0000_0000;
        let out = chacha_block(&state, 20);
        let expect: [u32; 16] = [
            0xe4e7_f110,
            0x1559_3bd1,
            0x1fdd_0f50,
            0xc471_20a3,
            0xc7f4_d1c7,
            0x0368_c033,
            0x9aaa_2204,
            0x4e6c_d4c3,
            0x4664_82d2,
            0x09aa_9f07,
            0x05d7_c214,
            0xa202_8bd9,
            0xd19c_12b5,
            0xb94e_16de,
            0xe883_d0cb,
            0x4e3c_50a2,
        ];
        assert_eq!(out, expect);
    }

    #[test]
    fn std_rng_is_deterministic_and_clonable() {
        let mut a = StdRng::seed_from_u64(0xF00D);
        let mut b = a.clone();
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(0xF00D);
        assert_eq!(c.next_u64(), xs[0]);
        let mut d = StdRng::seed_from_u64(0xF00E);
        assert_ne!(d.next_u64(), xs[0]);
    }

    #[test]
    fn f64_draws_are_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.gen_range(10usize..=20);
            assert!((10..=20).contains(&v));
            let w = r.gen_range(5u32..8);
            assert!((5..8).contains(&w));
            let f = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn mixed_width_draws_consume_words_sequentially() {
        // next_u64 after an odd number of next_u32 calls must still see the
        // next sequential words (BlockRng reads straddle freely).
        let mut a = StdRng::seed_from_u64(42);
        let w0 = a.next_u32();
        let w12 = a.next_u64();
        let mut b = StdRng::seed_from_u64(42);
        let v0 = b.next_u32() as u64;
        let v1 = b.next_u32() as u64;
        let v2 = b.next_u32() as u64;
        assert_eq!(w0 as u64, v0);
        assert_eq!(w12, (v2 << 32) | v1);
    }
}
