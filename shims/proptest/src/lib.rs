//! Offline stand-in for `proptest` (API subset).
//!
//! Implements the slice of proptest the workspace uses: the [`proptest!`]
//! macro, range / tuple / `any` / `collection::{vec, hash_set}` strategies,
//! and `prop_assert*`. Values are drawn uniformly with a deterministic
//! per-test RNG (seeded from the test name), so failures reproduce exactly
//! across runs. No shrinking: a failing case panics with the sampled
//! inputs available via the assertion message, which is enough for the
//! fixed-seed regression style used in this repo.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, StandardSample};

/// Strategy abstraction: something that can produce values.
pub mod strategy {
    use super::*;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The produced type.
        type Value;
        /// Draws one value.
        fn sample_value(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<T: SampleUniform + Copy> Strategy for core::ops::Range<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    impl<T: SampleUniform + Copy> Strategy for core::ops::RangeInclusive<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut StdRng) -> T {
            rng.gen_range(*self.start()..=*self.end())
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident => $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample_value(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A => 0);
    tuple_strategy!(A => 0, B => 1);
    tuple_strategy!(A => 0, B => 1, C => 2);
    tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
    tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
    tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);

    /// Strategy for the full domain of a type (see [`super::arbitrary::any`]).
    pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

    impl<T: StandardSample> Strategy for Any<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Any;

    /// Full-domain strategy for `T`.
    pub fn any<T: rand::StandardSample>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Accepted size arguments: exact, `a..b`, `a..=b`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize {
            if self.lo >= self.hi {
                self.lo
            } else {
                rng.gen_range(self.lo..=self.hi)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }
    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing a `Vec` of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample_value(rng)).collect()
        }
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy producing a `HashSet` of distinct values.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = HashSet::with_capacity(n);
            let mut attempts = 0usize;
            while out.len() < n {
                out.insert(self.element.sample_value(rng));
                attempts += 1;
                assert!(
                    attempts < 100 * (n + 1),
                    "hash_set strategy: element domain too small for requested size {n}"
                );
            }
            out
        }
    }

    /// `proptest::collection::hash_set`.
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S> {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Harness configuration (field subset).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// Test-runner plumbing used by the expanded [`proptest!`] macro.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic per-test RNG: seeded from the test's name so each
    /// property sees a stable, independent stream across runs.
    pub fn rng_for(test_name: &str) -> StdRng {
        // FNV-1a 64-bit over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// The property-test macro: runs each property `cases` times with values
/// drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident(
        $($arg:pat in $strat:expr),* $(,)?
    ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::rng_for(stringify!($name));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(
                        let $arg = $crate::strategy::Strategy::sample_value(
                            &($strat), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

/// Property assertion (panics on failure, like a failed test case).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

pub use arbitrary::any;
pub use strategy::Strategy;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Sanity: strategies respect their domains.
        #[test]
        fn domains_hold(
            x in 3u32..10,
            (a, b) in (0.0f64..1.0, any::<bool>()),
            v in crate::collection::vec(0u8..4, 1..20),
            s in crate::collection::hash_set(0u64..50, 2..8),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&a));
            let _ = b;
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 4));
            prop_assert!(s.len() >= 2 && s.len() < 8);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut r1 = crate::test_runner::rng_for("t");
        let mut r2 = crate::test_runner::rng_for("t");
        let s = crate::collection::vec(0u32..1000, 5..10);
        assert_eq!(s.sample_value(&mut r1), s.sample_value(&mut r2));
    }
}
